// Unit tests for the per-topic ranked lists, Algorithm 1 maintenance
// (including the Figure 5 golden state) and the traversal cursor.
#include <limits>
#include <map>
#include <random>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/ranked_list.h"
#include "core/traversal.h"
#include "paper_fixture.h"

namespace ksir {
namespace {

using ::ksir::testing::BalancedQueryVector;
using ::ksir::testing::MakePaperEngineAtT8;

// ------------------------------------------------------------ RankedList --

TEST(RankedListTest, InsertKeepsDescendingOrder) {
  RankedList list;
  list.Insert(1, 0.3, 10);
  list.Insert(2, 0.9, 11);
  list.Insert(3, 0.5, 12);
  std::vector<ElementId> order;
  for (const auto& key : list) order.push_back(key.id);
  EXPECT_EQ(order, (std::vector<ElementId>{2, 3, 1}));
}

TEST(RankedListTest, TiesBreakById) {
  RankedList list;
  list.Insert(7, 0.5, 1);
  list.Insert(3, 0.5, 1);
  std::vector<ElementId> order;
  for (const auto& key : list) order.push_back(key.id);
  EXPECT_EQ(order, (std::vector<ElementId>{3, 7}));
}

TEST(RankedListTest, UpdateRepositions) {
  RankedList list;
  list.Insert(1, 0.3, 10);
  list.Insert(2, 0.9, 11);
  list.Update(1, 1.5, 13);
  EXPECT_EQ(list.begin()->id, 1);
  const auto tuple = list.Get(1);
  EXPECT_DOUBLE_EQ(tuple.score, 1.5);
  EXPECT_EQ(tuple.te, 13);
  EXPECT_EQ(list.TimeOf(1), 13);
}

TEST(RankedListTest, EraseRemoves) {
  RankedList list;
  list.Insert(1, 0.3, 10);
  list.Insert(2, 0.9, 11);
  list.Erase(2);
  EXPECT_EQ(list.size(), 1u);
  EXPECT_FALSE(list.Contains(2));
  EXPECT_TRUE(list.Contains(1));
}

TEST(RankedListTest, EqualScoresDistinctElementsCoexist) {
  RankedList list;
  list.Insert(1, 0.5, 1);
  list.Insert(2, 0.5, 2);
  list.Erase(1);
  EXPECT_TRUE(list.Contains(2));
  EXPECT_DOUBLE_EQ(list.Get(2).score, 0.5);
}

// ------------------------------------------------------- RankedListIndex --

TEST(RankedListIndexTest, InsertSpansTopics) {
  RankedListIndex index(3);
  index.Insert(1, {{0, 0.9}, {2, 0.1}}, 5);
  EXPECT_TRUE(index.Contains(1));
  EXPECT_TRUE(index.list(0).Contains(1));
  EXPECT_FALSE(index.list(1).Contains(1));
  EXPECT_TRUE(index.list(2).Contains(1));
  EXPECT_EQ(index.total_entries(), 2u);
  EXPECT_EQ(index.num_elements(), 1u);
}

TEST(RankedListIndexTest, EraseClearsAllLists) {
  RankedListIndex index(3);
  index.Insert(1, {{0, 0.9}, {1, 0.5}}, 5);
  index.Erase(1);
  EXPECT_FALSE(index.Contains(1));
  EXPECT_EQ(index.total_entries(), 0u);
  EXPECT_TRUE(index.list(0).empty());
}

TEST(RankedListIndexTest, UpdateRepositionsAcrossLists) {
  RankedListIndex index(2);
  index.Insert(1, {{0, 0.9}, {1, 0.1}}, 5);
  index.Insert(2, {{0, 0.5}, {1, 0.5}}, 6);
  index.Update(1, {{0, 0.2}, {1, 0.8}}, 7);
  EXPECT_EQ(index.list(0).begin()->id, 2);
  EXPECT_EQ(index.list(1).begin()->id, 1);
}

// --------------------------------------------- Figure 5 golden list state --

class Figure5Test : public ::testing::Test {
 protected:
  void SetUp() override { fixture_ = MakePaperEngineAtT8(); }
  ksir::testing::PaperEngine fixture_;
};

TEST_F(Figure5Test, RankedList1MatchesPaper) {
  // Figure 5 RL_1 (score, t_e); e1/e7 are a near-tie at 0.0565 vs 0.0563 —
  // exact arithmetic orders e1 first, and the figure's tuple *values*
  // <0.06,5>, <0.06,7> match (e1: t_e=5, e7: t_e=7); only the paper's row
  // labels are swapped.
  const RankedList& list = fixture_.engine->index().list(0);
  struct Row {
    ElementId id;
    double score;
    Timestamp te;
  };
  const std::vector<Row> expected = {
      {3, 0.65, 8}, {6, 0.48, 8}, {8, 0.17, 8}, {2, 0.10, 8},
      {1, 0.06, 5}, {7, 0.06, 7}, {5, 0.05, 5},
  };
  ASSERT_EQ(list.size(), expected.size());
  std::size_t i = 0;
  for (const auto& key : list) {
    EXPECT_EQ(key.id, expected[i].id) << "position " << i;
    EXPECT_NEAR(key.score, expected[i].score, 0.005) << "position " << i;
    EXPECT_EQ(list.TimeOf(key.id), expected[i].te) << "position " << i;
    ++i;
  }
}

TEST_F(Figure5Test, RankedList2MatchesPaper) {
  const RankedList& list = fixture_.engine->index().list(1);
  struct Row {
    ElementId id;
    double score;
    Timestamp te;
  };
  const std::vector<Row> expected = {
      {1, 0.56, 5}, {2, 0.48, 8}, {5, 0.27, 5}, {7, 0.18, 7},
      {8, 0.16, 8}, {6, 0.13, 8}, {3, 0.03, 8},
  };
  ASSERT_EQ(list.size(), expected.size());
  std::size_t i = 0;
  for (const auto& key : list) {
    EXPECT_EQ(key.id, expected[i].id) << "position " << i;
    EXPECT_NEAR(key.score, expected[i].score, 0.005) << "position " << i;
    EXPECT_EQ(list.TimeOf(key.id), expected[i].te) << "position " << i;
    ++i;
  }
}

TEST_F(Figure5Test, ExpiredElementAbsentFromLists) {
  EXPECT_FALSE(fixture_.engine->index().Contains(4));
  EXPECT_EQ(fixture_.engine->index().num_elements(), 7u);
}

TEST_F(Figure5Test, ScoresNonIncreasingInEveryList) {
  for (TopicId t = 0; t < 2; ++t) {
    const RankedList& list = fixture_.engine->index().list(t);
    double prev = std::numeric_limits<double>::infinity();
    for (const auto& key : list) {
      EXPECT_LE(key.score, prev);
      prev = key.score;
    }
  }
}

// ------------------------------------------------------ RankedListCursor --

TEST_F(Figure5Test, CursorPopsInWeightedScoreOrder) {
  const SparseVector x = BalancedQueryVector();
  RankedListCursor cursor(&fixture_.engine->index(), &x);
  // Initial UB(x) = 0.5 * 0.647 + 0.5 * 0.560 = 0.604 (paper: 0.61).
  EXPECT_NEAR(cursor.UpperBound(), 0.604, 0.005);
  // Pop order: e3 (0.324), e1 (0.280), e2 (0.240), e6 (0.239), ...
  EXPECT_EQ(cursor.PopNext(), std::optional<ElementId>(3));
  EXPECT_EQ(cursor.PopNext(), std::optional<ElementId>(1));
  EXPECT_EQ(cursor.PopNext(), std::optional<ElementId>(2));
  EXPECT_EQ(cursor.PopNext(), std::optional<ElementId>(6));
  EXPECT_EQ(cursor.num_retrieved(), 4u);
  // After popping the strong elements the bound collapses to ~0.22.
  EXPECT_NEAR(cursor.UpperBound(), 0.221, 0.005);
}

TEST_F(Figure5Test, CursorVisitsEachElementOnce) {
  const SparseVector x = BalancedQueryVector();
  RankedListCursor cursor(&fixture_.engine->index(), &x);
  std::vector<ElementId> popped;
  while (auto id = cursor.PopNext()) popped.push_back(*id);
  std::vector<ElementId> sorted = popped;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<ElementId>{1, 2, 3, 5, 6, 7, 8}));
  EXPECT_TRUE(cursor.Exhausted());
  EXPECT_DOUBLE_EQ(cursor.UpperBound(), 0.0);
  EXPECT_EQ(cursor.PopNext(), std::nullopt);
}

TEST_F(Figure5Test, CursorUpperBoundMonotoneNonIncreasing) {
  const SparseVector x = BalancedQueryVector();
  RankedListCursor cursor(&fixture_.engine->index(), &x);
  double prev = cursor.UpperBound();
  while (auto id = cursor.PopNext()) {
    const double ub = cursor.UpperBound();
    EXPECT_LE(ub, prev + 1e-12);
    prev = ub;
  }
}

TEST_F(Figure5Test, CursorUpperBoundDominatesUnpopped) {
  // Soundness: UB(x) >= delta(e, x) for every not-yet-popped element.
  const SparseVector x = BalancedQueryVector();
  RankedListCursor cursor(&fixture_.engine->index(), &x);
  std::vector<ElementId> remaining = {1, 2, 3, 5, 6, 7, 8};
  while (!remaining.empty()) {
    const double ub = cursor.UpperBound();
    for (ElementId id : remaining) {
      const SocialElement* e = fixture_.engine->window().Find(id);
      ASSERT_NE(e, nullptr);
      EXPECT_GE(ub + 1e-12, fixture_.engine->scoring().ElementScore(*e, x));
    }
    const auto popped = cursor.PopNext();
    ASSERT_TRUE(popped.has_value());
    std::erase(remaining, *popped);
  }
}

TEST_F(Figure5Test, SingleTopicQueryWalksOneList) {
  const SparseVector x = SparseVector::FromEntries({{0, 1.0}});
  RankedListCursor cursor(&fixture_.engine->index(), &x);
  EXPECT_EQ(cursor.PopNext(), std::optional<ElementId>(3));
  EXPECT_EQ(cursor.PopNext(), std::optional<ElementId>(6));
  EXPECT_EQ(cursor.PopNext(), std::optional<ElementId>(8));
}

TEST(CursorEdgeTest, EmptyIndexIsExhausted) {
  RankedListIndex index(2);
  const SparseVector x = SparseVector::FromEntries({{0, 0.7}, {1, 0.3}});
  RankedListCursor cursor(&index, &x);
  EXPECT_TRUE(cursor.Exhausted());
  EXPECT_DOUBLE_EQ(cursor.UpperBound(), 0.0);
  EXPECT_EQ(cursor.PopNext(), std::nullopt);
}

TEST(CursorEdgeTest, QueryTopicBeyondIndexIsIgnored) {
  RankedListIndex index(2);
  index.Insert(1, {{0, 0.5}}, 1);
  const SparseVector x = SparseVector::FromEntries({{0, 0.5}, {9, 0.5}});
  RankedListCursor cursor(&index, &x);
  EXPECT_EQ(cursor.PopNext(), std::optional<ElementId>(1));
  EXPECT_TRUE(cursor.Exhausted());
}

// ------------------------------------------- Chunked storage under churn --

TEST(RankedListChurnTest, MatchesOrderedReferenceAcrossSplitsAndMerges) {
  // Drive the chunked backing store through thousands of inserts, updates
  // and erases (far beyond one chunk's capacity) and require iteration to
  // match an std::set reference at every checkpoint.
  RankedList list;
  std::set<RankedList::Key> reference;
  std::map<ElementId, double> score_of;
  std::mt19937_64 rng(2024);
  std::uniform_real_distribution<double> score_dist(0.0, 1.0);

  const auto verify = [&]() {
    ASSERT_EQ(list.size(), reference.size());
    auto ref_it = reference.begin();
    for (const auto& key : list) {
      ASSERT_NE(ref_it, reference.end());
      EXPECT_EQ(key.id, ref_it->id);
      EXPECT_DOUBLE_EQ(key.score, ref_it->score);
      ++ref_it;
    }
    EXPECT_EQ(ref_it, reference.end());
  };

  ElementId next_id = 0;
  for (int round = 0; round < 6000; ++round) {
    const double action = score_dist(rng);
    if (action < 0.5 || score_of.empty()) {
      const ElementId id = next_id++;
      const double score = score_dist(rng);
      list.Insert(id, score, round);
      reference.insert(RankedList::Key{score, id});
      score_of[id] = score;
    } else if (action < 0.8) {
      auto it = score_of.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(
                           rng() % score_of.size()));
      const double score = score_dist(rng);
      reference.erase(RankedList::Key{it->second, it->first});
      reference.insert(RankedList::Key{score, it->first});
      list.Update(it->first, score, round);
      it->second = score;
    } else {
      auto it = score_of.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(
                           rng() % score_of.size()));
      list.Erase(it->first);
      reference.erase(RankedList::Key{it->second, it->first});
      score_of.erase(it);
    }
    if (round % 500 == 499) verify();
  }
  verify();
  // Drain to empty through the erase/merge path.
  while (!score_of.empty()) {
    const auto it = score_of.begin();
    list.Erase(it->first);
    reference.erase(RankedList::Key{it->second, it->first});
    score_of.erase(it);
  }
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.begin(), list.end());
}

TEST(RankedListChurnTest, GetAndTimeOfSurviveRepositioning) {
  RankedList list;
  for (ElementId id = 0; id < 300; ++id) {
    list.Insert(id, static_cast<double>(id % 7), id);
  }
  for (ElementId id = 0; id < 300; id += 3) {
    list.Update(id, static_cast<double>(id % 11) + 0.5, 1000 + id);
  }
  for (ElementId id = 0; id < 300; ++id) {
    const auto tuple = list.Get(id);
    EXPECT_EQ(tuple.id, id);
    if (id % 3 == 0) {
      EXPECT_DOUBLE_EQ(tuple.score, static_cast<double>(id % 11) + 0.5);
      EXPECT_EQ(tuple.te, 1000 + id);
    } else {
      EXPECT_DOUBLE_EQ(tuple.score, static_cast<double>(id % 7));
      EXPECT_EQ(tuple.te, id);
    }
  }
}

// ----------------------------------------------------------- ApplyBatch --

/// Applies `updates` to `batched` via one ApplyBatch call and to `single`
/// via per-element Update calls, then requires identical key sequences.
void CheckBatchMatchesSingle(RankedList* batched, RankedList* single,
                             const std::vector<RankedList::Tuple>& updates) {
  RankedList::BatchScratch scratch;
  batched->ApplyBatch(updates.data(), updates.size(), &scratch);
  for (const auto& update : updates) {
    single->Update(update.id, update.score, update.te);
  }
  ASSERT_EQ(batched->size(), single->size());
  auto single_it = single->begin();
  for (const auto& key : *batched) {
    EXPECT_EQ(key.id, single_it->id);
    EXPECT_EQ(key.score, single_it->score);  // bitwise-identical doubles
    ++single_it;
  }
  EXPECT_EQ(single_it, single->end());
  for (const auto& update : updates) {
    const auto lhs = batched->Get(update.id);
    const auto rhs = single->Get(update.id);
    EXPECT_EQ(lhs.score, rhs.score);
    EXPECT_EQ(lhs.te, rhs.te);
    EXPECT_EQ(lhs.te, update.te);
  }
}

TEST(RankedListBatchTest, BatchEqualsSingleOnSmallList) {
  RankedList batched;
  RankedList single;
  for (ElementId id = 0; id < 10; ++id) {
    batched.Insert(id, static_cast<double>(id), id);
    single.Insert(id, static_cast<double>(id), id);
  }
  // Mix of upward moves, downward moves, a no-op score (te-only change)
  // and a tie with an untouched element.
  CheckBatchMatchesSingle(&batched, &single,
                          {{3, 12.0, 100},
                           {7, 0.5, 101},
                           {5, 5.0, 102},
                           {1, 6.0, 103}});
}

TEST(RankedListBatchTest, BatchAcrossManyChunksMatchesReference) {
  // Enough keys for dozens of chunks; batches repeatedly reposition random
  // subsets and the result must match a per-element Update twin and an
  // std::set reference at every step.
  RankedList batched;
  RankedList single;
  std::set<RankedList::Key> reference;
  std::map<ElementId, double> score_of;
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> score_dist(0.0, 1.0);
  for (ElementId id = 0; id < 2000; ++id) {
    const double score = score_dist(rng);
    batched.Insert(id, score, id);
    single.Insert(id, score, id);
    reference.insert(RankedList::Key{score, id});
    score_of[id] = score;
  }
  for (int round = 0; round < 40; ++round) {
    // Batch sizes sweep from a couple of keys to a large fraction of the
    // list (collisions with chunk boundaries, emptied chunks, clustered
    // and spread targets all occur across rounds).
    const std::size_t batch_size = 2 + (rng() % 400);
    std::vector<RankedList::Tuple> updates;
    std::set<ElementId> used;
    for (std::size_t i = 0; i < batch_size; ++i) {
      const ElementId id = static_cast<ElementId>(rng() % 2000);
      if (!used.insert(id).second) continue;
      // Occasionally cluster scores to exercise near-equal keys.
      const double score = (rng() % 4 == 0)
                               ? 0.5
                               : score_dist(rng);
      updates.push_back({id, score, 10000 + round});
      reference.erase(RankedList::Key{score_of[id], id});
      reference.insert(RankedList::Key{score, id});
      score_of[id] = score;
    }
    ASSERT_NO_FATAL_FAILURE(
        CheckBatchMatchesSingle(&batched, &single, updates));
    ASSERT_EQ(batched.size(), reference.size());
    auto ref_it = reference.begin();
    for (const auto& key : batched) {
      ASSERT_EQ(key.id, ref_it->id);
      ASSERT_EQ(key.score, ref_it->score);
      ++ref_it;
    }
  }
}

TEST(RankedListBatchTest, WholeListRepositionedInOneBatch) {
  RankedList batched;
  RankedList single;
  std::vector<RankedList::Tuple> updates;
  for (ElementId id = 0; id < 500; ++id) {
    batched.Insert(id, static_cast<double>(id), id);
    single.Insert(id, static_cast<double>(id), id);
    // Reverse the entire order in one sweep.
    updates.push_back({id, static_cast<double>(500 - id), 1000 + id});
  }
  CheckBatchMatchesSingle(&batched, &single, updates);
}

TEST(RankedListBatchTest, TeOnlyBatchLeavesOrderUntouched) {
  RankedList list;
  for (ElementId id = 0; id < 100; ++id) {
    list.Insert(id, static_cast<double>(id), id);
  }
  std::vector<RankedList::Tuple> updates;
  for (ElementId id = 0; id < 100; id += 7) {
    updates.push_back({id, static_cast<double>(id), 5000 + id});
  }
  RankedList::BatchScratch scratch;
  list.ApplyBatch(updates.data(), updates.size(), &scratch);
  ElementId expected = 99;
  for (const auto& key : list) {
    EXPECT_EQ(key.id, expected--);
  }
  EXPECT_EQ(list.TimeOf(7), 5007);
}

// ------------------------------------------------------------- NaN guard --

TEST(RankedListDeathTest, InsertRejectsNaNScore) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  RankedList list;
  EXPECT_DEATH(list.Insert(1, nan, 0), "isnan");
}

TEST(RankedListDeathTest, UpdateRejectsNaNScore) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  RankedList list;
  list.Insert(1, 0.5, 0);
  EXPECT_DEATH(list.Update(1, nan, 1), "isnan");
}

TEST(RankedListDeathTest, ApplyBatchRejectsNaNScore) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  RankedList list;
  list.Insert(1, 0.5, 0);
  RankedList::Tuple update;
  update.id = 1;
  update.score = nan;
  update.te = 1;
  RankedList::BatchScratch scratch;
  EXPECT_DEATH(list.ApplyBatch(&update, 1, &scratch), "isnan");
}

// --------------------------------------------------- Refresh mode (paper) --

TEST(RefreshModeTest, PaperModeKeepsStaleUpperBound) {
  // Build a stream where an element loses a referrer with no gain in the
  // same bucket: with kPaper the list score stays stale-high; with kExact
  // it drops to the true value.
  auto model = TopicModel::FromMatrix({{0.5, 0.5}});
  ASSERT_TRUE(model.ok());
  for (const RefreshMode mode : {RefreshMode::kExact, RefreshMode::kPaper}) {
    EngineConfig config;
    config.scoring.lambda = 0.5;
    config.scoring.eta = 2.0;
    config.window_length = 4;
    config.bucket_length = 1;
    config.refresh_mode = mode;
    KsirEngine engine(config, &*model);

    auto mk = [](ElementId id, Timestamp ts, std::vector<ElementId> refs) {
      SocialElement e;
      e.id = id;
      e.ts = ts;
      e.doc = Document::FromWordIds({0});
      e.refs = std::move(refs);
      e.topics = SparseVector::FromEntries({{0, 1.0}});
      return e;
    };
    ASSERT_TRUE(engine.AdvanceTo(1, {mk(1, 1, {})}).ok());
    ASSERT_TRUE(engine.AdvanceTo(2, {mk(2, 2, {1})}).ok());
    ASSERT_TRUE(engine.AdvanceTo(5, {mk(3, 5, {1})}).ok());
    // t=6: e2 (ts 2) leaves the window; e1 loses its referral, e3 remains.
    ASSERT_TRUE(engine.AdvanceTo(6, {}).ok());
    const double listed = engine.index().list(0).Get(1).score;
    const SocialElement* e1 = engine.window().Find(1);
    ASSERT_NE(e1, nullptr);
    const double exact = engine.scoring().TopicScore(0, *e1);
    if (mode == RefreshMode::kExact) {
      EXPECT_NEAR(listed, exact, 1e-12);
    } else {
      EXPECT_GT(listed, exact);  // stale but still a sound upper bound
    }
  }
}

}  // namespace
}  // namespace ksir
