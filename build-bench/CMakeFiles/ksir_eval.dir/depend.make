# Empty dependencies file for ksir_eval.
# This may be replaced when dependencies are built.
