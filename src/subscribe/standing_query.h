// Standing (continuous) k-SIR queries: the deployment pattern of the
// paper's introduction — users keep an interest registered and the system
// refreshes their representative set as the window slides.
//
// StandingQueryManager is the single-engine facade over the subscription
// engine (subscribe/subscription_manager.h). It keeps the legacy
// Register/EvaluateAll surface — re-evaluate on demand, report a per-query
// `changed` bit — while routing through the shared-evaluation + delta
// machinery. The default mode is kNaive (every EvaluateAll call evaluates
// every query, the historical behavior); kIndexed consumes the engine's
// AdvanceSummary so untouched queries are skipped.
//
// The manager is evaluator-agnostic: evaluation runs through a
// caller-supplied function — a single engine's Query (the convenience
// constructor) or the sharded service's planner + cache path (see
// service/sharded_standing_query.h).
#ifndef KSIR_SUBSCRIBE_STANDING_QUERY_H_
#define KSIR_SUBSCRIBE_STANDING_QUERY_H_

#include <cstdint>

#include "common/status.h"
#include "core/engine.h"
#include "subscribe/subscription_manager.h"

namespace ksir {

/// Registry of standing queries over one evaluation backend.
/// Thread-compatible; call EvaluateAll from the ingestion thread after
/// AdvanceTo (the evaluator is responsible for its own locking).
class StandingQueryManager {
 public:
  /// Invoked per standing query per evaluation. `changed` is true when the
  /// result's element set differs from the previous evaluation.
  using Callback = SubscriptionManager::LegacyCallback;
  using Evaluator = SubscriptionManager::Evaluator;

  /// Evaluates through `evaluator` (must be non-null). Without an engine
  /// there is no AdvanceSummary, so kIndexed degrades to full rounds.
  explicit StandingQueryManager(Evaluator evaluator,
                                SubscriptionMode mode = SubscriptionMode::kNaive,
                                Telemetry* telemetry = nullptr);

  /// Convenience: evaluates through `engine->Query`. `engine` must outlive
  /// the manager. Under kIndexed, EvaluateAll reads the engine's last
  /// advance summary and only wakes the touched subscriptions.
  explicit StandingQueryManager(const KsirEngine* engine,
                                SubscriptionMode mode = SubscriptionMode::kNaive,
                                Telemetry* telemetry = nullptr);

  /// Registers a query; returns its standing id.
  std::int64_t Register(KsirQuery query, Callback callback) {
    return subscriptions_.Register(std::move(query), std::move(callback));
  }

  /// Delta-stream registration (enter/leave/reorder events).
  std::int64_t Subscribe(KsirQuery query, SubscriptionCallback callback) {
    return subscriptions_.Subscribe(std::move(query), std::move(callback));
  }

  /// Removes a standing query; false when the id is unknown.
  bool Unregister(std::int64_t standing_id) {
    return subscriptions_.Unsubscribe(standing_id);
  }

  /// Re-evaluates standing queries against the current stream state. Under
  /// kNaive every query runs; under kIndexed (with an engine) only queries
  /// touched by buckets since the previous call run — a repeated call with
  /// no intervening AdvanceTo wakes nothing but fresh registrations.
  /// Returns the first query error encountered (remaining queries still
  /// run).
  Status EvaluateAll();

  std::size_t size() const { return subscriptions_.size(); }

  /// The underlying subscription engine (counters, delta subscriptions).
  SubscriptionManager& subscriptions() { return subscriptions_; }
  const SubscriptionManager& subscriptions() const { return subscriptions_; }

 private:
  const KsirEngine* engine_ = nullptr;
  std::uint64_t last_epoch_seen_ = 0;
  SubscriptionManager subscriptions_;
};

}  // namespace ksir

#endif  // KSIR_SUBSCRIBE_STANDING_QUERY_H_
