#!/usr/bin/env python3
"""Validator for the service's Prometheus text exposition.

Run against a metrics dump produced by a live service (CI feeds it the
query_server_sim output). Three layers of checks, any failure exits 1:

  1. Well-formedness: every non-comment line is `name[{labels}] value`,
     every sample belongs to a family announced by a `# TYPE` header, and
     histogram series are internally consistent (cumulative bucket counts
     are non-decreasing, the `+Inf` bucket equals `_count`).
  2. Catalogue: the metric names every layer of the engine is supposed to
     populate during an ingest+query run are present with plausible
     values (counters non-negative, the load-bearing ones non-zero).
  3. Stage accounting: the per-stage maintenance histograms decompose the
     bucket-apply histogram, so their summed `_sum` must land within
     STAGE_SUM_TOLERANCE of the bucket-apply `_sum` (the stages nest
     inside the apply scope; a large gap means a stage lost its timer).

Usage: check_metrics_exposition.py METRICS.prom
"""

import re
import sys

# Relative gap allowed between sum(stage _sum) and the bucket-apply _sum.
STAGE_SUM_TOLERANCE = 0.20

# Metric families an ingest+query run must populate. Maps name -> minimum
# expected value ("> 0" for load-bearing counts, ">= 0" for situational
# ones that may legitimately stay zero on a given workload).
REQUIRED_COUNTERS_POSITIVE = [
    "ksir_ingest_elements_total",
    "ksir_ingest_buckets_total",
    "ksir_ingest_update_nanos_total",
    "ksir_maintainer_fresh_total",
    "ksir_maintainer_repositions_total",
    "ksir_service_queries_total",
    "ksir_planner_plans_total",
    "ksir_pool_tasks_total",
    # The subscription engine: query_server_sim registers 48 standing
    # subscriptions over 16 distinct queries, so registrations, activated
    # rounds, evaluations and delta events must all have happened.
    "ksir_sub_registered_total",
    "ksir_sub_activated_total",
    "ksir_sub_evaluations_total",
    "ksir_sub_deltas_total",
]
REQUIRED_COUNTERS_NONNEGATIVE = [
    "ksir_maintainer_expired_total",
    "ksir_maintainer_elements_touched_total",
    "ksir_maintainer_elisions_total",
    "ksir_cache_hits_total",
    "ksir_cache_misses_total",
    "ksir_cache_evictions_total",
    "ksir_cache_invalidated_total",
    "ksir_cache_stale_inserts_total",
    "ksir_planner_epoch_retries_total",
    "ksir_planner_merge_wins_total",
    "ksir_planner_best_shard_wins_total",
    # Situational on a given workload: skips need an untouched-topic round,
    # shared hits need >1 subscription in an activated group that round.
    "ksir_sub_skipped_total",
    "ksir_sub_shared_hits_total",
]
REQUIRED_HISTOGRAMS_POPULATED = [
    "ksir_maintainer_bucket_apply_seconds",
    "ksir_maintainer_stage_expiry_seconds",
    "ksir_maintainer_stage_list_apply_seconds",
    "ksir_engine_advance_seconds",
    "ksir_ingest_bucket_seconds",
    "ksir_planner_plan_seconds",
    "ksir_service_query_seconds",
    "ksir_service_cache_lookup_seconds",
    "ksir_pool_task_seconds",
    "ksir_sub_evaluate_seconds",
]
STAGE_HISTOGRAMS = [
    "ksir_maintainer_stage_expiry_seconds",
    "ksir_maintainer_stage_score_seconds",
    "ksir_maintainer_stage_gather_seconds",
    "ksir_maintainer_stage_list_apply_seconds",
]
BUCKET_APPLY_HISTOGRAM = "ksir_maintainer_bucket_apply_seconds"

SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[0-9.eE+-]+|NaN)$")
HEADER_RE = re.compile(
    r"^# (?P<kind>HELP|TYPE) (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?: (?P<rest>.*))?$")


def fail(errors):
    for error in errors:
        print(f"FAIL: {error}")
    return 1


def main(argv):
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    with open(argv[1], "r", encoding="utf-8") as f:
        lines = f.read().splitlines()

    errors = []
    types = {}     # family name -> counter|gauge|histogram
    samples = {}   # full sample name -> [(labels-dict, value)]
    for i, line in enumerate(lines, 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            header = HEADER_RE.match(line)
            if header is None:
                errors.append(f"line {i}: malformed comment header: {line!r}")
            elif header.group("kind") == "TYPE":
                types[header.group("name")] = (header.group("rest") or
                                               "").strip()
            continue
        sample = SAMPLE_RE.match(line)
        if sample is None:
            errors.append(f"line {i}: malformed sample line: {line!r}")
            continue
        labels = {}
        if sample.group("labels"):
            for pair in sample.group("labels").split(","):
                key, _, raw = pair.partition("=")
                labels[key.strip()] = raw.strip().strip('"')
        samples.setdefault(sample.group("name"), []).append(
            (labels, float(sample.group("value"))))

    # Every sample must belong to a declared family (histograms expose
    # their samples under _bucket/_sum/_count suffixes).
    for name in samples:
        family = re.sub(r"_(bucket|sum|count)$", "", name)
        if name not in types and family not in types:
            errors.append(f"sample {name} has no # TYPE header")

    def scalar(name):
        if name not in samples or len(samples[name]) != 1:
            return None
        return samples[name][0][1]

    for name in REQUIRED_COUNTERS_POSITIVE:
        value = scalar(name)
        if value is None:
            errors.append(f"required counter {name} missing")
        elif value <= 0:
            errors.append(f"counter {name} = {value}, expected > 0")
    for name in REQUIRED_COUNTERS_NONNEGATIVE:
        value = scalar(name)
        if value is None:
            errors.append(f"required counter {name} missing")
        elif value < 0:
            errors.append(f"counter {name} = {value}, expected >= 0")

    def histogram_ok(family):
        count = scalar(f"{family}_count")
        total = scalar(f"{family}_sum")
        buckets = samples.get(f"{family}_bucket", [])
        if count is None or total is None or not buckets:
            errors.append(f"histogram {family} missing series")
            return None
        cumulative = -1.0
        inf_count = None
        for labels, value in buckets:
            if value < cumulative:
                errors.append(
                    f"{family}_bucket not cumulative at le={labels.get('le')}")
            cumulative = value
            if labels.get("le") == "+Inf":
                inf_count = value
        if inf_count != count:
            errors.append(f"{family}: +Inf bucket {inf_count} != "
                          f"_count {count}")
        return count, total

    populated = {}
    for family in set(REQUIRED_HISTOGRAMS_POPULATED + STAGE_HISTOGRAMS +
                      [BUCKET_APPLY_HISTOGRAM]):
        populated[family] = histogram_ok(family)
    for family in REQUIRED_HISTOGRAMS_POPULATED:
        if populated.get(family) and populated[family][0] <= 0:
            errors.append(f"histogram {family} has zero observations "
                          f"(telemetry level not kCounters?)")

    # Stage accounting: the stage sums decompose the bucket-apply sum.
    apply_series = populated.get(BUCKET_APPLY_HISTOGRAM)
    if apply_series and apply_series[1] > 0:
        apply_sum = apply_series[1]
        stage_sum = sum(populated[f][1] for f in STAGE_HISTOGRAMS
                        if populated.get(f))
        gap = abs(stage_sum - apply_sum) / apply_sum
        print(f"stage sums: {stage_sum:.6f} s of {apply_sum:.6f} s "
              f"bucket-apply ({100.0 * stage_sum / apply_sum:.1f}%, "
              f"gap limit {STAGE_SUM_TOLERANCE * 100.0:.0f}%)")
        if gap > STAGE_SUM_TOLERANCE:
            errors.append(
                f"stage sums {stage_sum:.6f} s deviate from bucket-apply "
                f"{apply_sum:.6f} s by {gap * 100.0:.1f}% "
                f"(> {STAGE_SUM_TOLERANCE * 100.0:.0f}%)")

    if errors:
        return fail(errors)
    print(f"OK: {len(samples)} sample families well-formed, catalogue "
          f"complete, stage accounting consistent")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
