file(REMOVE_RECURSE
  "CMakeFiles/ksir_common.dir/src/common/rng.cpp.o"
  "CMakeFiles/ksir_common.dir/src/common/rng.cpp.o.d"
  "CMakeFiles/ksir_common.dir/src/common/sparse_vector.cpp.o"
  "CMakeFiles/ksir_common.dir/src/common/sparse_vector.cpp.o.d"
  "CMakeFiles/ksir_common.dir/src/common/status.cpp.o"
  "CMakeFiles/ksir_common.dir/src/common/status.cpp.o.d"
  "libksir_common.a"
  "libksir_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksir_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
