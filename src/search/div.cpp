#include "search/div.h"

#include <algorithm>

namespace ksir {

namespace {

// score(q, S) with relevance already known per element.
double Objective(const TfIdfIndex& index, const std::vector<ElementId>& set,
                 const std::vector<double>& rels, double lambda) {
  double rel_sum = 0.0;
  for (double r : rels) rel_sum += r;
  double div = 0.0;
  if (set.size() >= 2) {
    double dissim = 0.0;
    std::size_t pairs = 0;
    for (std::size_t i = 0; i < set.size(); ++i) {
      for (std::size_t j = i + 1; j < set.size(); ++j) {
        dissim += 1.0 - index.ElementSimilarity(set[i], set[j]);
        ++pairs;
      }
    }
    div = dissim / static_cast<double>(pairs);
  }
  return lambda * rel_sum + (1.0 - lambda) * div;
}

}  // namespace

std::vector<ElementId> DivTopK(const TfIdfIndex& index,
                               const std::vector<WordId>& keywords,
                               std::size_t k, DivOptions options) {
  const std::vector<ElementId> pool =
      index.TopK(keywords, options.candidate_pool);
  if (pool.empty() || k == 0) return {};

  std::vector<double> pool_rel(pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    pool_rel[i] = index.Similarity(pool[i], keywords);
  }

  std::vector<ElementId> selected;
  std::vector<double> selected_rel;
  std::vector<bool> used(pool.size(), false);
  while (selected.size() < k) {
    double best_score = -1.0;
    std::size_t best_idx = pool.size();
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (used[i]) continue;
      selected.push_back(pool[i]);
      selected_rel.push_back(pool_rel[i]);
      const double score =
          Objective(index, selected, selected_rel, options.lambda);
      selected.pop_back();
      selected_rel.pop_back();
      if (score > best_score) {
        best_score = score;
        best_idx = i;
      }
    }
    if (best_idx == pool.size()) break;
    used[best_idx] = true;
    selected.push_back(pool[best_idx]);
    selected_rel.push_back(pool_rel[best_idx]);
  }
  return selected;
}

}  // namespace ksir
