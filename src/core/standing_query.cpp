#include "core/standing_query.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace ksir {

StandingQueryManager::StandingQueryManager(Evaluator evaluator)
    : evaluator_(std::move(evaluator)) {
  KSIR_CHECK(evaluator_ != nullptr);
}

StandingQueryManager::StandingQueryManager(const KsirEngine* engine)
    : StandingQueryManager(Evaluator(
          [engine](const KsirQuery& query) { return engine->Query(query); })) {
  KSIR_CHECK(engine != nullptr);
}

std::int64_t StandingQueryManager::Register(KsirQuery query,
                                            Callback callback) {
  KSIR_CHECK(callback != nullptr);
  const std::int64_t id = next_id_++;
  entries_.emplace(id, Entry{std::move(query), std::move(callback), {}, false});
  return id;
}

bool StandingQueryManager::Unregister(std::int64_t standing_id) {
  return entries_.erase(standing_id) > 0;
}

Status StandingQueryManager::EvaluateAll() {
  Status first_error;
  for (auto& [id, entry] : entries_) {
    auto result = evaluator_(entry.query);
    if (!result.ok()) {
      if (first_error.ok()) first_error = result.status();
      continue;
    }
    std::vector<ElementId> sorted = result->element_ids;
    std::sort(sorted.begin(), sorted.end());
    const bool changed = !entry.evaluated_once || sorted != entry.last_result;
    entry.last_result = std::move(sorted);
    entry.evaluated_once = true;
    entry.callback(id, *result, changed);
  }
  return first_error;
}

}  // namespace ksir
