file(REMOVE_RECURSE
  "CMakeFiles/ksir_core.dir/src/core/brute_force.cpp.o"
  "CMakeFiles/ksir_core.dir/src/core/brute_force.cpp.o.d"
  "CMakeFiles/ksir_core.dir/src/core/candidate_state.cpp.o"
  "CMakeFiles/ksir_core.dir/src/core/candidate_state.cpp.o.d"
  "CMakeFiles/ksir_core.dir/src/core/celf.cpp.o"
  "CMakeFiles/ksir_core.dir/src/core/celf.cpp.o.d"
  "CMakeFiles/ksir_core.dir/src/core/engine.cpp.o"
  "CMakeFiles/ksir_core.dir/src/core/engine.cpp.o.d"
  "CMakeFiles/ksir_core.dir/src/core/index_maintainer.cpp.o"
  "CMakeFiles/ksir_core.dir/src/core/index_maintainer.cpp.o.d"
  "CMakeFiles/ksir_core.dir/src/core/mttd.cpp.o"
  "CMakeFiles/ksir_core.dir/src/core/mttd.cpp.o.d"
  "CMakeFiles/ksir_core.dir/src/core/mtts.cpp.o"
  "CMakeFiles/ksir_core.dir/src/core/mtts.cpp.o.d"
  "CMakeFiles/ksir_core.dir/src/core/ranked_list.cpp.o"
  "CMakeFiles/ksir_core.dir/src/core/ranked_list.cpp.o.d"
  "CMakeFiles/ksir_core.dir/src/core/score_cache.cpp.o"
  "CMakeFiles/ksir_core.dir/src/core/score_cache.cpp.o.d"
  "CMakeFiles/ksir_core.dir/src/core/scoring.cpp.o"
  "CMakeFiles/ksir_core.dir/src/core/scoring.cpp.o.d"
  "CMakeFiles/ksir_core.dir/src/core/sieve_streaming.cpp.o"
  "CMakeFiles/ksir_core.dir/src/core/sieve_streaming.cpp.o.d"
  "CMakeFiles/ksir_core.dir/src/core/standing_query.cpp.o"
  "CMakeFiles/ksir_core.dir/src/core/standing_query.cpp.o.d"
  "CMakeFiles/ksir_core.dir/src/core/topk_representative.cpp.o"
  "CMakeFiles/ksir_core.dir/src/core/topk_representative.cpp.o.d"
  "CMakeFiles/ksir_core.dir/src/core/traversal.cpp.o"
  "CMakeFiles/ksir_core.dir/src/core/traversal.cpp.o.d"
  "libksir_core.a"
  "libksir_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksir_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
