// Social-text tokenizer: lowercases, strips URLs and punctuation, and keeps
// hashtags / @-mentions as single tokens (the paper models hashtag and
// mention propagation, so "#NBAPlayoffs" and "@LFC" must survive as words).
#ifndef KSIR_TEXT_TOKENIZER_H_
#define KSIR_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace ksir {

/// Tokenization options; the defaults match the paper's preprocessing
/// (lowercase, drop URLs, keep social markers, drop 1-character noise).
struct TokenizerOptions {
  /// Lowercase all tokens.
  bool lowercase = true;
  /// Keep the leading '#' / '@' of hashtags and mentions as part of the
  /// token; when false the sigil is stripped but the token kept.
  bool keep_sigils = false;
  /// Drop tokens shorter than this many characters (after sigil stripping).
  std::size_t min_token_length = 2;
  /// Drop tokens that start with "http://", "https://" or "www.".
  bool strip_urls = true;
  /// Drop tokens that are purely numeric ("128", "110").
  bool drop_numbers = true;
};

/// Splits raw social text into normalized word tokens.
class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = {}) : options_(options) {}

  /// Tokenizes `text`; never fails (unknown bytes act as separators).
  std::vector<std::string> Tokenize(std::string_view text) const;

  const TokenizerOptions& options() const { return options_; }

 private:
  TokenizerOptions options_;
};

}  // namespace ksir

#endif  // KSIR_TEXT_TOKENIZER_H_
