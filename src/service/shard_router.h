// Element-to-shard routing for the sharded service.
//
// Influence scores (Eq. 4) are computed from reference edges, and every
// shard engine only sees its own partition, so an edge whose endpoints land
// on different shards is lost (it shows up as a dangling reference on the
// referrer's shard). The router therefore keeps reference chains together:
// an element that refers to an already-routed element follows it onto the
// same shard; root elements (no known reference target) are spread by an
// id hash. Retweet/comment/citation cascades are trees rooted at an
// original post, so this keeps most edges intra-shard while the hash keeps
// the shards balanced at the root level.
//
// Assignments are kept as long as the element can still be referenced:
// every incoming reference "touches" the target, extending its routing
// lifetime — mirroring the active window, where referrals keep an element
// active indefinitely. PruneOlderThan drops assignments untouched for a
// full window + retention horizon.
#ifndef KSIR_SERVICE_SHARD_ROUTER_H_
#define KSIR_SERVICE_SHARD_ROUTER_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.h"
#include "stream/element.h"

namespace ksir {

/// Stateful partitioner. Thread-compatible: all mutations happen on the
/// single ingestion thread.
class ShardRouter {
 public:
  explicit ShardRouter(std::size_t num_shards);

  /// Chooses and records the shard of `e`: the shard of the first reference
  /// target with a known assignment, else a hash of the element id. Known
  /// reference targets are touched (their routing lifetime restarts).
  /// References to targets assigned to a *different* shard than the chosen
  /// one are counted in cross_shard_refs() (they will be dangling there).
  std::size_t Route(const SocialElement& e);

  /// True when `id` has a recorded assignment.
  bool Knows(ElementId id) const;

  /// Removes the assignments of `ids` (rollback of a failed bucket's
  /// Route calls; touches of older targets are left in place).
  void Forget(const std::vector<ElementId>& ids);

  /// Drops assignments last touched at or before `cutoff`: they are past
  /// resurrectability (references point backward in time and anything
  /// still referring to them would have touched them).
  void PruneOlderThan(Timestamp cutoff);

  std::size_t num_shards() const { return num_shards_; }

  /// Reference edges whose target was known to live on another shard.
  std::int64_t cross_shard_refs() const { return cross_shard_refs_; }

  /// Currently tracked assignments (memory bound check).
  std::size_t tracked() const { return assignment_.size(); }

 private:
  struct Assignment {
    std::uint32_t shard;
    /// Element ts at creation, then the ts of the latest referrer.
    Timestamp last_touch;
  };

  std::size_t HashShard(ElementId id) const;

  std::size_t num_shards_;
  std::int64_t cross_shard_refs_ = 0;
  std::unordered_map<ElementId, Assignment> assignment_;
  /// (id, touch ts) in ts order for pruning; entries whose ts no longer
  /// matches the assignment's last_touch are stale and skipped (same idiom
  /// as ActiveWindow's archive queue).
  std::deque<std::pair<ElementId, Timestamp>> touch_queue_;
};

}  // namespace ksir

#endif  // KSIR_SERVICE_SHARD_ROUTER_H_
