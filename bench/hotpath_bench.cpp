// Ingestion/query hot-path benchmark: incremental ScoreCache maintenance
// vs. the full-recompute baseline on a reposition-heavy stream.
//
// The workload is deliberately hub-heavy (high mean out-references, strong
// preferential attachment, flat recency decay) so that most of Algorithm 1's
// work is repositioning already-indexed elements whose referrer sets
// changed — exactly the case the score decomposition accelerates. Both
// engines ingest the identical generated stream bucket by bucket; per-bucket
// wall times and end-of-stream MTTS/MTTD/CELF query latencies are measured,
// and the two engines' query results are required to match (same ids,
// scores within 1e-9).
//
// Emits machine-readable JSON (default ./BENCH_hotpath.json, override with
// argv[1]) so CI can archive the trajectory. KSIR_BENCH_SCALE =
// smoke | small | paper scales the stream.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "common/timer.h"
#include "core/engine.h"
#include "stream/generator.h"

namespace ksir::bench {
namespace {

struct BucketStats {
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double max_ms = 0.0;
  double total_ms = 0.0;
  double elements_per_sec = 0.0;
  std::size_t num_buckets = 0;
};

double Percentile(std::vector<double> sorted_ms, double q) {
  if (sorted_ms.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted_ms.size() - 1) + 0.5);
  return sorted_ms[std::min(idx, sorted_ms.size() - 1)];
}

/// Feeds `elements` in engine-config buckets, timing every AdvanceTo.
BucketStats Feed(KsirEngine* engine, std::vector<SocialElement> elements) {
  std::vector<double> bucket_ms;
  const std::size_t n = elements.size();
  const Status status = AppendInBuckets(
      std::move(elements), engine->config().bucket_length,
      [engine]() { return engine->now(); },
      [engine, &bucket_ms](Timestamp bucket_end,
                           std::vector<SocialElement> bucket) {
        WallTimer timer;
        const Status s = engine->AdvanceTo(bucket_end, std::move(bucket));
        bucket_ms.push_back(timer.ElapsedMillis());
        return s;
      });
  KSIR_CHECK(status.ok());
  BucketStats stats;
  stats.num_buckets = bucket_ms.size();
  for (const double ms : bucket_ms) {
    stats.total_ms += ms;
    stats.max_ms = std::max(stats.max_ms, ms);
  }
  std::sort(bucket_ms.begin(), bucket_ms.end());
  stats.p50_ms = Percentile(bucket_ms, 0.50);
  stats.p95_ms = Percentile(bucket_ms, 0.95);
  stats.elements_per_sec =
      stats.total_ms > 0.0
          ? static_cast<double>(n) / (stats.total_ms / 1000.0)
          : 0.0;
  return stats;
}

struct QueryLatencies {
  double mtts_mean_ms = 0.0;
  double mttd_mean_ms = 0.0;
  double celf_mean_ms = 0.0;
};

int Run(const char* out_path) {
  const Scale scale = GetScale();
  const double factor = ElementFactor(scale);

  // Reposition-heavy profile: every arrival references ~6 earlier elements
  // picked mostly by popularity, so hubs accumulate large in-degrees and
  // are repositioned over and over.
  StreamProfile profile;
  profile.name = "reposition-heavy";
  profile.num_elements =
      std::max<std::size_t>(2000, static_cast<std::size_t>(12000 * factor));
  profile.vocab_size = 8000;
  profile.num_topics = 50;
  profile.avg_length = 16.0;
  profile.avg_references = 20.0;
  profile.max_references = 128;
  profile.duration = 4 * 24 * 3600;
  profile.ref_horizon = 48 * 3600;
  profile.ref_recency_tau = 48 * 3600;
  profile.ref_popularity_weight = 0.9;
  profile.ref_candidate_pool = 2048;
  profile.seed = 42;

  PrintBanner("Hot-path bench: incremental vs recompute maintenance",
              "Algorithm 1 + Algorithms 2-3 hot paths");

  auto generated = GenerateStream(profile);
  KSIR_CHECK(generated.ok());
  Dataset dataset{profile.name, std::move(generated).value(), 1.0};
  dataset.eta = CalibrateEta(dataset.stream);

  EngineConfig base = MakeConfig(dataset, /*window_length=*/48 * 3600);
  EngineConfig incremental_config = base;
  incremental_config.score_maintenance = ScoreMaintenance::kIncremental;
  EngineConfig recompute_config = base;
  recompute_config.score_maintenance = ScoreMaintenance::kRecompute;

  KsirEngine incremental(incremental_config, &dataset.stream.model);
  KsirEngine recompute(recompute_config, &dataset.stream.model);

  // Identical element copies for both engines.
  const BucketStats recompute_feed =
      Feed(&recompute, dataset.stream.elements);
  const BucketStats incremental_feed =
      Feed(&incremental, std::vector<SocialElement>(dataset.stream.elements));

  // Query workload at end-of-stream state.
  const std::vector<QuerySpec> workload =
      MakeWorkload(dataset, NumQueries(scale));
  QueryLatencies incremental_lat;
  QueryLatencies recompute_lat;
  bool results_identical = true;
  double max_abs_score_diff = 0.0;
  const struct {
    Algorithm algorithm;
    double QueryLatencies::*slot;
  } kAlgos[] = {
      {Algorithm::kMtts, &QueryLatencies::mtts_mean_ms},
      {Algorithm::kMttd, &QueryLatencies::mttd_mean_ms},
      {Algorithm::kCelf, &QueryLatencies::celf_mean_ms},
  };
  for (const auto& algo : kAlgos) {
    double inc_total = 0.0;
    double rec_total = 0.0;
    for (const QuerySpec& spec : workload) {
      KsirQuery query;
      query.k = 10;
      query.epsilon = 0.1;
      query.x = spec.x;
      query.algorithm = algo.algorithm;
      const auto inc = incremental.Query(query);
      const auto rec = recompute.Query(query);
      KSIR_CHECK(inc.ok());
      KSIR_CHECK(rec.ok());
      inc_total += inc->stats.elapsed_ms;
      rec_total += rec->stats.elapsed_ms;
      if (inc->element_ids != rec->element_ids) results_identical = false;
      max_abs_score_diff =
          std::max(max_abs_score_diff, std::fabs(inc->score - rec->score));
      if (max_abs_score_diff > 1e-9) results_identical = false;
    }
    incremental_lat.*algo.slot = inc_total / workload.size();
    recompute_lat.*algo.slot = rec_total / workload.size();
  }

  const double speedup_total =
      incremental_feed.total_ms > 0.0
          ? recompute_feed.total_ms / incremental_feed.total_ms
          : 0.0;
  const double speedup_p50 =
      incremental_feed.p50_ms > 0.0
          ? recompute_feed.p50_ms / incremental_feed.p50_ms
          : 0.0;

  std::printf("  stream: %zu elements, %zu buckets, eta=%.4f\n",
              dataset.stream.elements.size(), incremental_feed.num_buckets,
              dataset.eta);
  std::printf("  bucket update total: recompute %.1f ms | incremental %.1f "
              "ms  -> speedup %.2fx\n",
              recompute_feed.total_ms, incremental_feed.total_ms,
              speedup_total);
  std::printf("  bucket update p50/p95: recompute %.3f/%.3f ms | "
              "incremental %.3f/%.3f ms\n",
              recompute_feed.p50_ms, recompute_feed.p95_ms,
              incremental_feed.p50_ms, incremental_feed.p95_ms);
  std::printf("  throughput: recompute %.0f el/s | incremental %.0f el/s\n",
              recompute_feed.elements_per_sec,
              incremental_feed.elements_per_sec);
  std::printf("  MTTS %.3f ms | MTTD %.3f ms | CELF %.3f ms (incremental "
              "engine means)\n",
              incremental_lat.mtts_mean_ms, incremental_lat.mttd_mean_ms,
              incremental_lat.celf_mean_ms);
  std::printf("  results identical: %s (max |score diff| = %.3g)\n",
              results_identical ? "yes" : "NO",
              max_abs_score_diff);

  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path);
    return 1;
  }
  const char* scale_name = scale == Scale::kSmoke   ? "smoke"
                           : scale == Scale::kSmall ? "small"
                                                    : "paper";
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"hotpath\",\n");
  std::fprintf(out, "  \"scale\": \"%s\",\n", scale_name);
  std::fprintf(out,
               "  \"workload\": {\"profile\": \"%s\", \"num_elements\": %zu, "
               "\"avg_references\": %.1f, \"ref_popularity_weight\": %.2f, "
               "\"num_topics\": %d, \"num_buckets\": %zu, "
               "\"window_length\": %lld, \"bucket_length\": %lld, "
               "\"eta\": %.6f},\n",
               profile.name.c_str(), dataset.stream.elements.size(),
               profile.avg_references, profile.ref_popularity_weight,
               profile.num_topics, incremental_feed.num_buckets,
               static_cast<long long>(base.window_length),
               static_cast<long long>(base.bucket_length), dataset.eta);
  const auto emit_engine = [out](const char* name, const BucketStats& feed,
                                 const QueryLatencies& lat, bool comma) {
    std::fprintf(
        out,
        "    \"%s\": {\"bucket_update\": {\"p50_ms\": %.6f, \"p95_ms\": "
        "%.6f, \"max_ms\": %.6f, \"total_ms\": %.3f, \"elements_per_sec\": "
        "%.1f}, \"queries\": {\"mtts_mean_ms\": %.6f, \"mttd_mean_ms\": "
        "%.6f, \"celf_mean_ms\": %.6f}}%s\n",
        name, feed.p50_ms, feed.p95_ms, feed.max_ms, feed.total_ms,
        feed.elements_per_sec, lat.mtts_mean_ms, lat.mttd_mean_ms,
        lat.celf_mean_ms, comma ? "," : "");
  };
  std::fprintf(out, "  \"engines\": {\n");
  emit_engine("incremental", incremental_feed, incremental_lat, true);
  emit_engine("recompute", recompute_feed, recompute_lat, false);
  std::fprintf(out, "  },\n");
  std::fprintf(out,
               "  \"speedup\": {\"bucket_update_total\": %.3f, "
               "\"bucket_update_p50\": %.3f},\n",
               speedup_total, speedup_p50);
  // Optional external reference: total feed time of the PRE-PR engine
  // (std::set ranked lists, full-recompute maintenance, node-based hash
  // maps) on this same generated workload, measured at the seed commit via
  // a git worktree (see README "Performance"). The in-tree recompute
  // baseline above already shares this PR's faster containers, so it
  // understates the real speedup; this field records the honest one.
  if (const char* prepr = std::getenv("KSIR_PREPR_TOTAL_MS")) {
    const double prepr_ms = std::atof(prepr);
    if (prepr_ms > 0.0 && incremental_feed.total_ms > 0.0) {
      std::fprintf(out,
                   "  \"pre_pr_reference\": {\"total_ms\": %.1f, "
                   "\"speedup_vs_incremental\": %.3f, \"methodology\": "
                   "\"seed-commit engine, identical generator workload, "
                   "measured via git worktree\"},\n",
                   prepr_ms, prepr_ms / incremental_feed.total_ms);
    }
  }
  std::fprintf(out, "  \"num_queries\": %zu,\n", workload.size());
  std::fprintf(out, "  \"results_identical\": %s,\n",
               results_identical ? "true" : "false");
  std::fprintf(out, "  \"max_abs_score_diff\": %.3g\n", max_abs_score_diff);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("  wrote %s\n", out_path);

  // Smoke-check contract for CI: results must match across the two paths.
  return results_identical ? 0 : 1;
}

}  // namespace
}  // namespace ksir::bench

int main(int argc, char** argv) {
  return ksir::bench::Run(argc > 1 ? argv[1] : "BENCH_hotpath.json");
}
