// Core scalar type aliases shared across all ksir subsystems.
#ifndef KSIR_COMMON_TYPES_H_
#define KSIR_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace ksir {

/// Identifier of a social element within a stream (dense, 0-based).
using ElementId = std::int64_t;
/// Identifier of a word in a Vocabulary (dense, 0-based).
using WordId = std::int32_t;
/// Identifier of a topic in a TopicModel (dense, 0-based).
using TopicId = std::int32_t;
/// Discrete stream time. The unit is arbitrary (the benchmarks use seconds);
/// window length T and bucket length L are expressed in the same unit.
using Timestamp = std::int64_t;

inline constexpr ElementId kInvalidElementId = -1;
inline constexpr WordId kInvalidWordId = -1;
inline constexpr TopicId kInvalidTopicId = -1;
inline constexpr Timestamp kMinTimestamp =
    std::numeric_limits<Timestamp>::min();
inline constexpr Timestamp kMaxTimestamp =
    std::numeric_limits<Timestamp>::max();

}  // namespace ksir

#endif  // KSIR_COMMON_TYPES_H_
