// Per-topic ranked lists (paper Section 4.1, Algorithm 1).
//
// RL_i keeps one tuple <delta_i(e), t_e> per active element with p_i(e) > 0,
// sorted by topic-wise representativeness score descending. The index
// supports O(log n) insert / reposition / erase and ordered traversal for
// the threshold algorithms.
#ifndef KSIR_CORE_RANKED_LIST_H_
#define KSIR_CORE_RANKED_LIST_H_

#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.h"

namespace ksir {

/// One topic's ranked list.
class RankedList {
 public:
  /// Ordering key: score descending, id ascending for determinism.
  struct Key {
    double score;
    ElementId id;

    bool operator<(const Key& other) const {
      if (score != other.score) return score > other.score;
      return id < other.id;
    }
  };

  /// Full tuple view <delta_i(e), t_e> plus the element id.
  struct Tuple {
    ElementId id;
    double score;
    Timestamp te;
  };

  using const_iterator = std::set<Key>::const_iterator;

  /// Inserts a new element; it must not be present.
  void Insert(ElementId id, double score, Timestamp te);

  /// Repositions an existing element with a new score / referral time.
  void Update(ElementId id, double score, Timestamp te);

  /// Removes an element; it must be present.
  void Erase(ElementId id);

  bool Contains(ElementId id) const { return by_id_.contains(id); }

  /// Tuple of a present element.
  Tuple Get(ElementId id) const;

  std::size_t size() const { return ordered_.size(); }
  bool empty() const { return ordered_.empty(); }

  /// Ordered traversal (descending score).
  const_iterator begin() const { return ordered_.begin(); }
  const_iterator end() const { return ordered_.end(); }

  /// t_e of a present element (stored beside the ordering key).
  Timestamp TimeOf(ElementId id) const;

 private:
  std::set<Key> ordered_;
  std::unordered_map<ElementId, std::pair<double, Timestamp>> by_id_;
};

/// The z ranked lists plus the per-element topic membership needed to erase
/// expired elements without consulting the (already pruned) window.
class RankedListIndex {
 public:
  explicit RankedListIndex(std::size_t num_topics);

  /// Inserts `id` into the list of every (topic, score) pair.
  void Insert(ElementId id,
              const std::vector<std::pair<TopicId, double>>& topic_scores,
              Timestamp te);

  /// Repositions `id` in every list it belongs to. `topic_scores` must cover
  /// exactly the element's topic support (same topics as at insertion).
  void Update(ElementId id,
              const std::vector<std::pair<TopicId, double>>& topic_scores,
              Timestamp te);

  /// Removes `id` from all its lists.
  void Erase(ElementId id);

  bool Contains(ElementId id) const { return membership_.contains(id); }

  const RankedList& list(TopicId topic) const;

  std::size_t num_topics() const { return lists_.size(); }

  /// Total tuples across all lists.
  std::size_t total_entries() const { return total_entries_; }

  /// Number of distinct indexed elements.
  std::size_t num_elements() const { return membership_.size(); }

 private:
  std::vector<RankedList> lists_;
  std::unordered_map<ElementId, std::vector<TopicId>> membership_;
  std::size_t total_entries_ = 0;
};

}  // namespace ksir

#endif  // KSIR_CORE_RANKED_LIST_H_
