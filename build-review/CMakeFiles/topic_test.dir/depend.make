# Empty dependencies file for topic_test.
# This may be replaced when dependencies are built.
