// Bag-of-words document representation (e.doc of the paper: a multiset of
// words drawn from the vocabulary).
#ifndef KSIR_TEXT_DOCUMENT_H_
#define KSIR_TEXT_DOCUMENT_H_

#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "common/types.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace ksir {

/// Sorted (word, frequency) bag of words. gamma(w, e) of Eq. (3) is the
/// frequency stored here.
class Document {
 public:
  using WordCount = std::pair<WordId, std::int32_t>;

  Document() = default;

  /// Builds from raw word ids (unsorted, duplicates allowed).
  static Document FromWordIds(const std::vector<WordId>& word_ids);

  /// Tokenizes raw text, removes stop words, interns surviving tokens into
  /// `vocab` (updating its occurrence counts) and builds the bag of words.
  static Document FromText(std::string_view text, const Tokenizer& tokenizer,
                           const StopWordSet& stopwords, Vocabulary* vocab);

  /// Distinct words with frequencies, sorted by WordId ascending.
  const std::vector<WordCount>& word_counts() const { return word_counts_; }

  /// Number of distinct words |V_e|.
  std::size_t num_distinct_words() const { return word_counts_.size(); }

  /// Total token count (document length after preprocessing).
  std::int64_t num_tokens() const { return num_tokens_; }

  bool empty() const { return word_counts_.empty(); }

  /// Frequency of `word` in this document (0 when absent). O(log |V_e|).
  std::int32_t FrequencyOf(WordId word) const;

  /// Expands to a flat token list (each word repeated by its frequency),
  /// as consumed by the Gibbs samplers.
  std::vector<WordId> ToTokenList() const;

  bool operator==(const Document& other) const {
    return word_counts_ == other.word_counts_;
  }

 private:
  std::vector<WordCount> word_counts_;
  std::int64_t num_tokens_ = 0;
};

}  // namespace ksir

#endif  // KSIR_TEXT_DOCUMENT_H_
