// Deterministic pseudo-random number generation and the samplers used by the
// synthetic stream generator and the topic model trainers.
//
// The engine is xoshiro256** seeded via splitmix64: fast, high quality, and
// reproducible across platforms (unlike std::mt19937 distributions, whose
// results are implementation-defined; all distribution code here is our own
// so that a fixed seed yields identical streams everywhere).
#ifndef KSIR_COMMON_RNG_H_
#define KSIR_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace ksir {

/// Deterministic 64-bit PRNG (xoshiro256**) with sampling helpers.
class Rng {
 public:
  /// Seeds the generator; identical seeds produce identical sequences.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound) for bound >= 1.
  std::uint64_t NextUint64(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive, lo <= hi.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (deterministic).
  double NextGaussian();

  /// Gamma(shape, 1) via Marsaglia-Tsang; shape > 0.
  double NextGamma(double shape);

  /// Poisson(mean) via inversion (mean < 30) or PTRS-style normal
  /// approximation with correction for larger means.
  std::int64_t NextPoisson(double mean);

  /// Samples an index in [0, weights.size()) proportional to weights
  /// (linear scan; use AliasTable for repeated draws).
  std::size_t NextCategorical(const std::vector<double>& weights);

  /// Symmetric Dirichlet(alpha) sample of dimension `dim` (normalized).
  std::vector<double> NextDirichlet(double alpha, std::size_t dim);

  /// Dirichlet with per-dimension concentration parameters.
  std::vector<double> NextDirichlet(const std::vector<double>& alpha);

  /// Forks an independent generator deterministically derived from this one.
  Rng Fork();

 private:
  std::uint64_t s_[4];
};

/// Zipf(s) sampler over ranks {1, ..., n}: P(X = r) ∝ r^{-s}.
/// Uses rejection-inversion (W. Hörmann & G. Derflinger), O(1) per draw,
/// suitable for vocabulary-scale n.
class ZipfSampler {
 public:
  /// n >= 1, exponent s > 0 (s != 1 handled as well as s == 1).
  ZipfSampler(std::size_t n, double s);

  /// Returns a rank in [1, n].
  std::size_t Sample(Rng* rng) const;

  std::size_t n() const { return n_; }
  double s() const { return s_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  std::size_t n_;
  double s_;
  double h_x1_;
  double h_n_;
  double threshold_;
};

/// Walker alias table for O(1) categorical sampling after O(n) setup.
class AliasTable {
 public:
  /// Builds from (possibly unnormalized) nonnegative weights; at least one
  /// weight must be positive.
  explicit AliasTable(const std::vector<double>& weights);

  /// Samples an index in [0, size()).
  std::size_t Sample(Rng* rng) const;

  std::size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

}  // namespace ksir

#endif  // KSIR_COMMON_RNG_H_
