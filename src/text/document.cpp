#include "text/document.h"

#include <algorithm>

#include "common/check.h"

namespace ksir {

Document Document::FromWordIds(const std::vector<WordId>& word_ids) {
  std::vector<WordId> sorted = word_ids;
  std::sort(sorted.begin(), sorted.end());
  Document doc;
  for (WordId w : sorted) {
    KSIR_DCHECK(w >= 0);
    if (!doc.word_counts_.empty() && doc.word_counts_.back().first == w) {
      ++doc.word_counts_.back().second;
    } else {
      doc.word_counts_.emplace_back(w, 1);
    }
  }
  doc.num_tokens_ = static_cast<std::int64_t>(sorted.size());
  return doc;
}

Document Document::FromText(std::string_view text, const Tokenizer& tokenizer,
                            const StopWordSet& stopwords, Vocabulary* vocab) {
  KSIR_CHECK(vocab != nullptr);
  std::vector<WordId> ids;
  for (const std::string& token : tokenizer.Tokenize(text)) {
    if (stopwords.Contains(token)) continue;
    const WordId id = vocab->GetOrAdd(token);
    vocab->AddOccurrences(id);
    ids.push_back(id);
  }
  return FromWordIds(ids);
}

std::int32_t Document::FrequencyOf(WordId word) const {
  const auto it = std::lower_bound(
      word_counts_.begin(), word_counts_.end(), word,
      [](const WordCount& wc, WordId w) { return wc.first < w; });
  if (it != word_counts_.end() && it->first == word) return it->second;
  return 0;
}

std::vector<WordId> Document::ToTokenList() const {
  std::vector<WordId> tokens;
  tokens.reserve(static_cast<std::size_t>(num_tokens_));
  for (const auto& [word, count] : word_counts_) {
    for (std::int32_t i = 0; i < count; ++i) tokens.push_back(word);
  }
  return tokens;
}

}  // namespace ksir
