// Partitioned bucket ingestion: hash/chain-partitions every bucket across N
// shard engines (ShardRouter) and advances all shards to the same bucket end
// in parallel on a worker pool. All shards share one logical clock; a bucket
// either lands on every shard or the call fails.
#ifndef KSIR_SERVICE_SHARDED_INGESTOR_H_
#define KSIR_SERVICE_SHARDED_INGESTOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "core/engine.h"
#include "service/shard_router.h"
#include "runtime/worker_pool.h"
#include "telemetry/telemetry.h"

namespace ksir {

/// Cumulative ingestion statistics of the sharded path. A point-in-time
/// view assembled from registry counters — safe to read from any thread
/// while another ingests (each field is an atomic sum; the snapshot is
/// per-field consistent).
struct IngestionStats {
  std::int64_t elements_ingested = 0;
  std::int64_t buckets_processed = 0;
  /// Reference edges lost to partitioning (endpoints on different shards).
  std::int64_t cross_shard_refs = 0;
  /// Wall time of the parallel shard advances (max over shards per bucket).
  double total_update_ms = 0.0;
};

/// Single-writer ingestion front of the sharded service. Thread-compatible:
/// one thread calls AdvanceTo/Append; queries go straight to the shard
/// engines (their own shared locks make that safe).
class ShardedIngestor {
 public:
  /// `shards`, `router` and `pool` must outlive the ingestor. `shards` must
  /// be non-empty, all constructed with the same config; `router` must have
  /// the same shard count. `telemetry` (optional, must outlive the
  /// ingestor) receives the ingest counters and per-bucket latency
  /// histogram; null gives the ingestor a private kOff Telemetry.
  ShardedIngestor(std::vector<KsirEngine*> shards, ShardRouter* router,
                  WorkerPool* pool, Telemetry* telemetry = nullptr);

  /// Advances every shard's clock to `bucket_end`, ingesting each element
  /// of `bucket` (sorted by ts in (now, bucket_end]) on the shard chosen by
  /// the router. Returns the first shard error. On failure the routing
  /// table stays consistent with shard contents: ids routed to shards that
  /// rejected their sub-bucket are forgotten (they were ingested nowhere),
  /// while ids on shards that accepted remain known — so a retry that
  /// re-sends an accepted element is rejected as a duplicate up front.
  /// Shard clocks may diverge until the next successful advance; recovery
  /// means re-sending only the failed shards' elements of a corrected
  /// bucket, with a later bucket_end.
  Status AdvanceTo(Timestamp bucket_end, std::vector<SocialElement> bucket);

  /// The shared shard clock.
  Timestamp now() const;

  /// Point-in-time counter view, safe to call from any thread concurrently
  /// with AdvanceTo (the backing storage is sharded atomics; the previous
  /// plain-field struct made every concurrent read a data race).
  IngestionStats stats() const;

  std::size_t num_shards() const { return shards_.size(); }

 private:
  std::vector<KsirEngine*> shards_;
  ShardRouter* router_;
  WorkerPool* pool_;
  Timestamp bucket_length_;
  /// Elements older than now - prune_horizon_ can no longer be referenced
  /// (past window + archive retention); their routing entries are dropped.
  Timestamp prune_horizon_;
  /// Fallback Telemetry (kOff) owned when none was passed.
  std::unique_ptr<Telemetry> owned_telemetry_;
  Telemetry* telemetry_;
  /// Always-live counters backing stats(). The update time is carried as
  /// integer nanoseconds so the pre-existing total_update_ms field stays
  /// exact at every telemetry level (its WallTimer pre-dates telemetry).
  Counter* elements_counter_;
  Counter* buckets_counter_;
  Counter* cross_refs_counter_;
  Counter* update_nanos_counter_;
  /// Per-bucket parallel-advance latency (recorded when timing is on).
  Histogram* bucket_hist_;
};

}  // namespace ksir

#endif  // KSIR_SERVICE_SHARDED_INGESTOR_H_
