// Tests of the KsirEngine facade: bucketing, validation, statistics, and
// concurrent query safety.
#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "subscribe/standing_query.h"
#include "paper_fixture.h"
#include "stream/generator.h"

namespace ksir {
namespace {

using ::ksir::testing::BalancedQueryVector;
using ::ksir::testing::PaperElements;
using ::ksir::testing::PaperEngineConfig;
using ::ksir::testing::PaperTopicModel;

TEST(EngineTest, AppendSplitsIntoBuckets) {
  auto model = PaperTopicModel();
  EngineConfig config = PaperEngineConfig();
  config.bucket_length = 3;
  KsirEngine engine(config, &model);
  ASSERT_TRUE(engine.Append(PaperElements()).ok());
  // Buckets end at multiples of 3 (3, 6); the final open bucket advances
  // only to the last element's timestamp (8) so later appends can extend it.
  EXPECT_EQ(engine.maintenance_stats().buckets_processed, 3);
  EXPECT_EQ(engine.maintenance_stats().elements_ingested, 8);
  EXPECT_EQ(engine.now(), 8);
}

TEST(EngineTest, AppendRejectsStaleElements) {
  auto model = PaperTopicModel();
  KsirEngine engine(PaperEngineConfig(), &model);
  ASSERT_TRUE(engine.Append(PaperElements()).ok());
  auto stale = PaperElements();
  stale[0].id = 100;  // fresh id, stale ts
  EXPECT_FALSE(engine.Append({stale[0]}).ok());
}

TEST(EngineTest, AppendEmptyIsNoop) {
  auto model = PaperTopicModel();
  KsirEngine engine(PaperEngineConfig(), &model);
  EXPECT_TRUE(engine.Append({}).ok());
  EXPECT_EQ(engine.now(), 0);
}

TEST(EngineTest, AdvanceToRejectsDuplicateIds) {
  auto model = PaperTopicModel();
  KsirEngine engine(PaperEngineConfig(), &model);
  auto elements = PaperElements();
  ASSERT_TRUE(engine.AdvanceTo(1, {elements[0]}).ok());
  auto duplicate = elements[0];
  duplicate.ts = 2;
  EXPECT_FALSE(engine.AdvanceTo(2, {duplicate}).ok());
}

TEST(EngineTest, MaintenanceStatsAccumulate) {
  auto model = PaperTopicModel();
  KsirEngine engine(PaperEngineConfig(), &model);
  ASSERT_TRUE(engine.Append(PaperElements()).ok());
  const MaintenanceStats stats = engine.maintenance_stats();
  EXPECT_EQ(stats.elements_ingested, 8);
  EXPECT_GE(stats.buckets_processed, 8);  // L = 1
  EXPECT_GE(stats.elements_expired, 1);   // e4 (and possibly e2's archive trip)
  EXPECT_GE(stats.total_update_ms, 0.0);
  EXPECT_EQ(stats.dangling_refs, 0);
}

TEST(EngineTest, WindowLengthShorterThanBucketRejected) {
  auto model = PaperTopicModel();
  EngineConfig config = PaperEngineConfig();
  config.window_length = 1;
  config.bucket_length = 4;
  EXPECT_DEATH(KsirEngine(config, &model), "window_length");
}

TEST(EngineTest, ConcurrentQueriesAreConsistent) {
  auto model = PaperTopicModel();
  KsirEngine engine(PaperEngineConfig(), &model);
  ASSERT_TRUE(engine.Append(PaperElements()).ok());

  KsirQuery query;
  query.k = 2;
  query.x = BalancedQueryVector();
  query.epsilon = 0.3;
  query.algorithm = Algorithm::kMttd;
  const QueryResult expected = *engine.Query(query);

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < 50; ++i) {
        auto result = engine.Query(query);
        if (!result.ok() || result->element_ids != expected.element_ids) {
          ++mismatches;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(EngineTest, QueriesInterleavedWithAdvances) {
  // Queries under a shared lock must never observe a torn index while a
  // writer thread advances the window.
  StreamProfile profile = TwitterSimProfile();
  profile.num_elements = 3000;
  profile.num_topics = 8;
  profile.vocab_size = 500;
  auto stream = GenerateStream(profile);
  ASSERT_TRUE(stream.ok());

  EngineConfig config;
  config.scoring.eta = 20.0;
  config.window_length = 24 * 3600;
  config.bucket_length = 15 * 60;
  KsirEngine engine(config, &stream->model);

  const SparseVector x = SparseVector::FromEntries({{0, 0.6}, {1, 0.4}});
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::thread reader([&]() {
    KsirQuery query;
    query.k = 5;
    query.x = x;
    query.algorithm = Algorithm::kMttd;
    while (!done.load()) {
      auto result = engine.Query(query);
      if (!result.ok()) ++failures;
    }
  });

  // Writer: feed the stream in bucket batches.
  std::size_t begin = 0;
  Timestamp bucket_end = 0;
  while (begin < stream->elements.size()) {
    bucket_end += config.bucket_length;
    std::vector<SocialElement> bucket;
    while (begin < stream->elements.size() &&
           stream->elements[begin].ts <= bucket_end) {
      bucket.push_back(stream->elements[begin]);
      ++begin;
    }
    ASSERT_TRUE(engine.AdvanceTo(bucket_end, std::move(bucket)).ok());
  }
  done.store(true);
  reader.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(engine.window().num_active(), 0u);
}

TEST(EngineTest, ResurrectedElementIsQueryable) {
  // e2's Table 1 lifecycle: deactivated at t=6, resurrected by e7 at t=7.
  // The skewed query of Example 3.4 must be able to return it afterwards.
  auto model = PaperTopicModel();
  KsirEngine engine(PaperEngineConfig(), &model);
  auto elements = PaperElements();
  std::vector<SocialElement> first(elements.begin(), elements.begin() + 6);
  std::vector<SocialElement> rest(elements.begin() + 6, elements.end());
  ASSERT_TRUE(engine.Append(std::move(first)).ok());
  EXPECT_FALSE(engine.window().IsActive(2));  // deactivated at t=6
  EXPECT_FALSE(engine.index().Contains(2));
  ASSERT_TRUE(engine.Append(std::move(rest)).ok());
  EXPECT_TRUE(engine.window().IsActive(2));
  EXPECT_TRUE(engine.index().Contains(2));

  KsirQuery query;
  query.k = 2;
  query.x = ksir::testing::SkewedQueryVector();
  query.epsilon = 0.3;
  query.algorithm = Algorithm::kMttd;
  auto result = engine.Query(query);
  ASSERT_TRUE(result.ok());
  std::vector<ElementId> ids = result->element_ids;
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<ElementId>{1, 2}));
}

TEST(EngineTest, QueryOnEmptyTopicsReturnsEmpty) {
  auto model = PaperTopicModel();
  KsirEngine engine(PaperEngineConfig(), &model);
  ASSERT_TRUE(engine.Append(PaperElements()).ok());
  // A query concentrated on a topic id beyond every element's support.
  KsirQuery query;
  query.k = 3;
  query.x = SparseVector::FromEntries({{1, 0.0}, {0, 0.0}});
  EXPECT_FALSE(engine.Query(query).ok());  // empty vector after pruning

  // Valid vector but the engine holds nothing yet.
  KsirEngine empty_engine(PaperEngineConfig(), &model);
  query.x = BalancedQueryVector();
  for (const Algorithm algorithm :
       {Algorithm::kMtts, Algorithm::kMttd, Algorithm::kCelf,
        Algorithm::kSieveStreaming, Algorithm::kTopkRepresentative}) {
    query.algorithm = algorithm;
    auto result = empty_engine.Query(query);
    ASSERT_TRUE(result.ok()) << AlgorithmName(algorithm);
    EXPECT_TRUE(result->element_ids.empty()) << AlgorithmName(algorithm);
    EXPECT_DOUBLE_EQ(result->score, 0.0) << AlgorithmName(algorithm);
  }
}

TEST(EngineTest, ToleratesDanglingReferencesBeyondRetention) {
  // AMinerSim's citation horizon (30 h) exceeds T = 24 h: references to
  // long-expired papers must be counted as dangling, never crash.
  StreamProfile profile = AMinerSimProfile();
  profile.num_elements = 4000;
  profile.num_topics = 8;
  profile.vocab_size = 800;
  auto stream = GenerateStream(profile);
  ASSERT_TRUE(stream.ok());
  EngineConfig config;
  config.scoring.eta = 20.0;
  config.window_length = 6 * 3600;  // much shorter than the 30 h horizon
  config.bucket_length = 15 * 60;
  KsirEngine engine(config, &stream->model);
  ASSERT_TRUE(engine.Append(stream->elements).ok());
  EXPECT_GT(engine.maintenance_stats().dangling_refs, 0);
  EXPECT_GT(engine.window().num_active(), 0u);
  EXPECT_EQ(engine.index().num_elements(), engine.window().num_active());
}

TEST(StandingQueryTest, FirstEvaluationReportsChanged) {
  auto model = PaperTopicModel();
  KsirEngine engine(PaperEngineConfig(), &model);
  ASSERT_TRUE(engine.Append(PaperElements()).ok());
  StandingQueryManager manager(&engine);

  KsirQuery query;
  query.k = 2;
  query.x = BalancedQueryVector();
  query.epsilon = 0.3;
  int calls = 0;
  bool last_changed = false;
  QueryResult last_result;
  manager.Register(query, [&](std::int64_t, const QueryResult& result,
                              bool changed) {
    ++calls;
    last_changed = changed;
    last_result = result;
  });
  EXPECT_EQ(manager.size(), 1u);
  ASSERT_TRUE(manager.EvaluateAll().ok());
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(last_changed);
  std::vector<ElementId> ids = last_result.element_ids;
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<ElementId>{1, 3}));

  // Unchanged window -> unchanged result, changed = false.
  ASSERT_TRUE(manager.EvaluateAll().ok());
  EXPECT_EQ(calls, 2);
  EXPECT_FALSE(last_changed);
}

TEST(StandingQueryTest, DetectsResultDriftAcrossWindowSlides) {
  auto model = PaperTopicModel();
  KsirEngine engine(PaperEngineConfig(), &model);
  auto elements = PaperElements();
  std::vector<SocialElement> first(elements.begin(), elements.begin() + 5);
  std::vector<SocialElement> rest(elements.begin() + 5, elements.end());
  ASSERT_TRUE(engine.Append(std::move(first)).ok());

  StandingQueryManager manager(&engine);
  KsirQuery query;
  // k = 4: at t = 5 the result must include e4, which expires by t = 8,
  // so the window slide necessarily changes the result set.
  query.k = 4;
  query.x = BalancedQueryVector();
  query.epsilon = 0.3;
  std::vector<bool> changes;
  std::vector<std::vector<ElementId>> results;
  manager.Register(query,
                   [&](std::int64_t, const QueryResult& result, bool changed) {
                     changes.push_back(changed);
                     auto ids = result.element_ids;
                     std::sort(ids.begin(), ids.end());
                     results.push_back(std::move(ids));
                   });
  ASSERT_TRUE(manager.EvaluateAll().ok());
  ASSERT_TRUE(engine.Append(std::move(rest)).ok());
  ASSERT_TRUE(manager.EvaluateAll().ok());
  ASSERT_EQ(changes.size(), 2u);
  EXPECT_TRUE(changes[0]);
  EXPECT_TRUE(changes[1]);  // the window moved from t=5 to t=8
  EXPECT_NE(results[0], results[1]);
  // e4 was active at t=5 but cannot appear at t=8.
  EXPECT_FALSE(std::binary_search(results[1].begin(), results[1].end(),
                                  ElementId{4}));
}

TEST(StandingQueryTest, UnregisterStopsCallbacks) {
  auto model = PaperTopicModel();
  KsirEngine engine(PaperEngineConfig(), &model);
  ASSERT_TRUE(engine.Append(PaperElements()).ok());
  StandingQueryManager manager(&engine);
  KsirQuery query;
  query.k = 2;
  query.x = BalancedQueryVector();
  int calls = 0;
  const std::int64_t id = manager.Register(
      query, [&](std::int64_t, const QueryResult&, bool) { ++calls; });
  EXPECT_TRUE(manager.Unregister(id));
  EXPECT_FALSE(manager.Unregister(id));
  ASSERT_TRUE(manager.EvaluateAll().ok());
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(manager.size(), 0u);
}

TEST(StandingQueryTest, InvalidStandingQueryReportsError) {
  auto model = PaperTopicModel();
  KsirEngine engine(PaperEngineConfig(), &model);
  ASSERT_TRUE(engine.Append(PaperElements()).ok());
  StandingQueryManager manager(&engine);
  KsirQuery bad;
  bad.k = 0;  // invalid
  bad.x = BalancedQueryVector();
  manager.Register(bad, [](std::int64_t, const QueryResult&, bool) {});
  KsirQuery good;
  good.k = 2;
  good.x = BalancedQueryVector();
  int good_calls = 0;
  manager.Register(good, [&](std::int64_t, const QueryResult&, bool) {
    ++good_calls;
  });
  const Status status = manager.EvaluateAll();
  EXPECT_FALSE(status.ok());   // the bad query's error is surfaced
  EXPECT_EQ(good_calls, 1);    // but the good query still ran
}

TEST(EngineTest, ArchiveRetentionConfigurable) {
  auto model = PaperTopicModel();
  EngineConfig config = PaperEngineConfig();
  config.archive_retention = 50;
  KsirEngine engine(config, &model);
  EXPECT_EQ(engine.window().archive_retention(), 50);
  EngineConfig default_config = PaperEngineConfig();
  KsirEngine engine2(default_config, &model);
  EXPECT_EQ(engine2.window().archive_retention(),
            default_config.window_length);
}

}  // namespace
}  // namespace ksir
