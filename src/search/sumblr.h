// Sumblr-style stream summarization baseline (Shou et al., SIGIR 2013;
// Section 5.1 of the paper).
//
// The paper's adaptation: elements containing at least one query keyword are
// the candidates; the summarizer clusters them (k-means over topic vectors,
// standing in for Sumblr's online tweet-cluster vectors) and picks one
// representative per cluster by LexRank centrality blended with an influence
// weight (in-window reference count, standing in for Sumblr's author
// PageRank — substitution documented in DESIGN.md §3).
#ifndef KSIR_SEARCH_SUMBLR_H_
#define KSIR_SEARCH_SUMBLR_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "search/tfidf.h"
#include "window/active_window.h"

namespace ksir {

/// Summarizer configuration.
struct SumblrOptions {
  /// k-means iterations.
  std::int32_t kmeans_iterations = 10;
  /// Blend exponent of the influence weight: score = lexrank * (1 +
  /// ln(1 + in_degree))^influence_boost.
  double influence_boost = 1.0;
  /// Cap on the candidate set (most recent kept).
  std::size_t max_candidates = 2000;
  std::uint64_t seed = 17;
};

/// Runs the Sumblr-style summarizer: keyword filter -> cluster -> LexRank.
/// `tfidf` provides the text-similarity graph for LexRank.
std::vector<ElementId> SumblrSummarize(const ActiveWindow& window,
                                       const TfIdfIndex& tfidf,
                                       const std::vector<WordId>& keywords,
                                       std::size_t k,
                                       std::size_t num_topics,
                                       SumblrOptions options = {});

}  // namespace ksir

#endif  // KSIR_SEARCH_SUMBLR_H_
