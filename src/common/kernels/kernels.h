// Vectorized hot-path kernels with runtime ISA dispatch.
//
// The maintenance and query hot loops of the engine — chunk searches and
// moves in the ranked lists, the FP reductions of scoring, the id scans of
// expiry, the head folds of the query cursor — are routed through this
// table of kernels. Each kernel has a portable scalar reference (always
// built) plus optional ISA arms (AVX2 / SSE2 on x86-64, NEON on aarch64)
// compiled into separate translation units with per-file ISA flags and
// selected ONCE at runtime from CPU feature detection.
//
// Correctness contract (the repo's crown-jewel invariant):
//   * Kernels whose result is an index, a key move, or a merge are
//     order-preserving: every arm returns the bit-identical result by
//     construction.
//   * Kernels that REDUCE floating point (dense_dot, sum_squares,
//     weighted_sum_argmax) define ONE canonical lane order — four strided
//     partial sums, lane j accumulating elements with index ≡ j (mod 4),
//     combined as (l0 + l2) + (l1 + l3) — and EVERY arm, the scalar
//     reference included, implements exactly that order. All engine paths
//     therefore stay bitwise identical to each other regardless of which
//     arm the dispatcher picked (the 5-way engine equivalence of
//     score_cache_test holds with SIMD on, off, or forced to scalar).
//   * Reduction kernels require NaN-free input (the engine rejects NaN
//     scores at its boundaries); ±0.0 is fine.
//
// kernel_test asserts scalar == dispatched bitwise for every kernel over
// randomized inputs (empty, unaligned, single-lane tails), and the CI
// forced-scalar job (KSIR_SIMD=OFF) keeps the portable arm green.
#ifndef KSIR_COMMON_KERNELS_KERNELS_H_
#define KSIR_COMMON_KERNELS_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace ksir {
namespace kernels {

/// 16-byte ranked-list key: score descending, id ascending for determinism.
/// This IS RankedList::Key (core aliases it), defined here so the kernels
/// can operate on key arrays without a layering violation and without
/// type-punning.
struct Key16 {
  double score;
  std::int64_t id;

  bool operator<(const Key16& other) const {
    if (score != other.score) return score > other.score;
    return id < other.id;
  }
  bool operator==(const Key16& other) const {
    return score == other.score && id == other.id;
  }
};
static_assert(sizeof(Key16) == 16);

/// One dispatch arm: a named table of kernel entry points. Arms not worth
/// vectorizing on a given ISA point at the scalar reference functions, so
/// every slot is always callable.
struct KernelTable {
  /// "scalar", "sse2", "avx2", or "neon".
  const char* isa;

  /// Index of the first key in sorted [keys, keys+n) that is not ordered
  /// before `key` (== std::lower_bound).
  std::size_t (*lower_bound_keys)(const Key16* keys, std::size_t n,
                                  Key16 key);
  /// Index of the first key ordered after `key` (== std::upper_bound).
  std::size_t (*upper_bound_keys)(const Key16* keys, std::size_t n,
                                  Key16 key);
  /// First i in [0, n) with base[i * stride] == id, else n. `stride` is in
  /// int64 elements (2 for 16-byte records carrying the id plus one other
  /// 8-byte field).
  std::size_t (*find_id64)(const std::int64_t* base, std::size_t n,
                           std::size_t stride, std::int64_t id);
  /// Copies n keys src -> dst, iterating forward; safe for overlapping
  /// ranges when dst <= src (std::copy semantics for left shifts).
  void (*copy_keys)(Key16* dst, const Key16* src, std::size_t n);
  /// Copies n keys src -> dst, iterating backward; safe for overlapping
  /// ranges when dst >= src (std::copy_backward semantics, with dst the
  /// FIRST destination element).
  void (*copy_keys_backward)(Key16* dst, const Key16* src, std::size_t n);
  /// Two-way merge of the sorted runs a and b into dst (keys unique across
  /// both runs; dst must not overlap either input). Inherently sequential
  /// — every arm runs the shared scalar body; the win comes from the
  /// vectorized searches and shifts around it.
  void (*merge_keys)(Key16* dst, const Key16* a, std::size_t na,
                     const Key16* b, std::size_t nb);

  /// sum_i a[i] * b[i] in the canonical 4-lane order.
  double (*dense_dot)(const double* a, const double* b, std::size_t n);
  /// sum_i v[i * stride]^2 in the canonical 4-lane order. `stride` is in
  /// doubles (2 walks the value halves of sorted (int32, double) sparse
  /// entries).
  double (*sum_squares)(const double* v, std::size_t n, std::size_t stride);
  /// Returns sum_i sum_vals[i] (canonical 4-lane order) and writes the
  /// smallest index of the maximum of max_vals[0..n) to *argmax (n when
  /// n == 0). The two arrays let one pass serve both the cursor's upper
  /// bound (exhausted slots contribute +0.0) and its argmax (exhausted
  /// slots carry a sentinel the caller thresholds against).
  double (*weighted_sum_argmax)(const double* sum_vals,
                                const double* max_vals, std::size_t n,
                                std::size_t* argmax);
  /// Stamped scatter-add over sorted (int32 index, double value) pairs laid
  /// out like SparseVector::Entry (16-byte records, value at offset 8):
  /// first touch of an epoch initializes values[idx], later touches
  /// accumulate. Sequential by nature (same-slot collisions); every arm
  /// runs the shared scalar body, so the scatter is dispatch-invariant.
  void (*scatter_add_entries)(const void* entries, std::size_t n,
                              double* values, std::uint64_t* stamps,
                              std::uint64_t epoch);
};

/// The portable reference arm (always available).
const KernelTable& ScalarTable();

/// The arm selected for this process: the best ISA the CPU supports among
/// the compiled-in arms, or ScalarTable() when forced / nothing better is
/// available. Selection happens once; the force flag is re-read per call.
const KernelTable& ActiveTable();

/// Forces ActiveTable() to the scalar arm (test hook and KSIR_SIMD=OFF
/// parity runs). Returns the previous value.
bool SetForceScalar(bool force);

/// True when at least one vector arm was compiled in.
bool SimdCompiledIn();

/// Space-separated CPU feature list relevant to dispatch (e.g.
/// "sse2 sse4.2 avx avx2"), for bench provenance.
std::string CpuFeatureString();

// ---- convenience wrappers over the active arm ------------------------------

inline std::size_t LowerBoundKeys(const Key16* keys, std::size_t n,
                                  const Key16& key) {
  return ActiveTable().lower_bound_keys(keys, n, key);
}
inline std::size_t UpperBoundKeys(const Key16* keys, std::size_t n,
                                  const Key16& key) {
  return ActiveTable().upper_bound_keys(keys, n, key);
}
inline std::size_t FindId64(const std::int64_t* base, std::size_t n,
                            std::size_t stride, std::int64_t id) {
  return ActiveTable().find_id64(base, n, stride, id);
}
inline void CopyKeys(Key16* dst, const Key16* src, std::size_t n) {
  ActiveTable().copy_keys(dst, src, n);
}
inline void CopyKeysBackward(Key16* dst, const Key16* src, std::size_t n) {
  ActiveTable().copy_keys_backward(dst, src, n);
}
inline void MergeKeys(Key16* dst, const Key16* a, std::size_t na,
                      const Key16* b, std::size_t nb) {
  ActiveTable().merge_keys(dst, a, na, b, nb);
}
inline double DenseDot(const double* a, const double* b, std::size_t n) {
  return ActiveTable().dense_dot(a, b, n);
}
inline double SumSquares(const double* v, std::size_t n,
                         std::size_t stride) {
  return ActiveTable().sum_squares(v, n, stride);
}
inline double WeightedSumArgmax(const double* sum_vals,
                                const double* max_vals, std::size_t n,
                                std::size_t* argmax) {
  return ActiveTable().weighted_sum_argmax(sum_vals, max_vals, n, argmax);
}
inline void ScatterAddEntries(const void* entries, std::size_t n,
                              double* values, std::uint64_t* stamps,
                              std::uint64_t epoch) {
  ActiveTable().scatter_add_entries(entries, n, values, stamps, epoch);
}

}  // namespace kernels
}  // namespace ksir

#endif  // KSIR_COMMON_KERNELS_KERNELS_H_
