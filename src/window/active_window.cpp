#include "window/active_window.h"

#include <algorithm>
#include <string>

#include "common/check.h"
#include "common/flat_hash_map.h"

namespace ksir {

const ReferrerList ActiveWindow::kNoReferrers = {};

ActiveWindow::ActiveWindow(Timestamp window_length,
                           Timestamp archive_retention)
    : window_length_(window_length),
      archive_retention_(archive_retention > 0 ? archive_retention
                                               : window_length) {
  KSIR_CHECK(window_length > 0);
}

ActiveWindow::~ActiveWindow() {
  for (auto& [id, entry] : entries_) pool_.Destroy(entry);
}

StatusOr<ActiveWindow::UpdateResult> ActiveWindow::Advance(
    Timestamp now, std::vector<SocialElement> bucket) {
  if (now < now_) {
    return Status::InvalidArgument("time must not move backwards");
  }
  UpdateResult result;
  ++advance_epoch_;
  // Deduplicated via the Entry stamps; may still contain ids that are later
  // reclassified (inserted / resurrected / expired), filtered at the end.
  // All scratch lives in members (capacity retained across buckets).
  std::vector<ElementId>& gained_list = gained_scratch_;
  std::vector<ElementId>& lost_list = lost_scratch_;
  FlatHashSet<ElementId>& resurrected = resurrected_scratch_;
  // Edge changes as they happen; filtered against the final element
  // classification before being reported.
  std::vector<EdgeDelta>& gained_edges_raw = gained_edges_scratch_;
  std::vector<EdgeDelta>& lost_edges_raw = lost_edges_scratch_;
  gained_list.clear();
  lost_list.clear();
  resurrected.clear();
  gained_edges_raw.clear();
  lost_edges_raw.clear();

  // --- Phase 1: insert the bucket and register its references. ---
  Timestamp prev_ts = now_;
  for (SocialElement& e : bucket) {
    if (e.ts <= now_) {
      return Status::InvalidArgument(
          "element ts " + std::to_string(e.ts) +
          " is not newer than the previous window time " +
          std::to_string(now_));
    }
    if (e.ts > now) {
      return Status::InvalidArgument("element ts beyond bucket end time");
    }
    if (e.ts < prev_ts) {
      return Status::InvalidArgument("bucket must be sorted by ts");
    }
    prev_ts = e.ts;
    if (entries_.contains(e.id)) {
      return Status::AlreadyExists("duplicate element id " +
                                   std::to_string(e.id));
    }
    const ElementId id = e.id;
    const Timestamp ts = e.ts;
    // Normalize the reference list: duplicate targets would double-count
    // influence edges (Eq. 4 is defined over the *set* e.ref), and a
    // self-reference is meaningless.
    std::sort(e.refs.begin(), e.refs.end());
    e.refs.erase(std::unique(e.refs.begin(), e.refs.end()), e.refs.end());
    std::erase(e.refs, id);
    // Register references; archived targets are resurrected.
    for (ElementId target : e.refs) {
      auto it = entries_.find(target);
      if (it == entries_.end()) {
        ++result.dangling_refs;
        continue;
      }
      Entry& entry = *it->second;
      entry.referrers.push_back(Referrer{id, ts});
      entry.last_ref_time = ts;
      if (entry.active) {
        if (entry.gained_stamp != advance_epoch_) {
          entry.gained_stamp = advance_epoch_;
          gained_list.push_back(target);
        }
        gained_edges_raw.push_back(EdgeDelta{target, id});
      } else {
        entry.active = true;
        entry.deactivated_at = kMinTimestamp;
        ++num_active_;
        resurrected.insert(target);
      }
    }
    Entry* entry = pool_.Create(Entry{std::move(e), {}, ts, true, kMinTimestamp});
    entries_.emplace(id, entry);
    ++num_active_;
    window_order_.push_back(id);
    result.inserted.push_back(id);
  }
  now_ = now;

  // --- Phase 2: expiry. Elements whose ts left W_t stop being referrers;
  // then every element that is out of window and referrer-free leaves A_t.
  const Timestamp cutoff = now_ - window_length_;  // in window iff ts > cutoff
  std::vector<ElementId>& leavers = leavers_;
  leavers.clear();
  while (!window_order_.empty()) {
    const ElementId id = window_order_.front();
    const auto it = entries_.find(id);
    KSIR_CHECK(it != entries_.end());
    if (it->second->element.ts > cutoff) break;
    window_order_.pop_front();
    leavers.push_back(id);
  }
  for (ElementId id : leavers) {
    const auto it = entries_.find(id);
    KSIR_CHECK(it != entries_.end());
    // The leaver no longer influences its reference targets.
    for (ElementId target : it->second->element.refs) {
      auto target_it = entries_.find(target);
      if (target_it == entries_.end() || !target_it->second->active) continue;
      auto& referrers = target_it->second->referrers;
      std::size_t expired_prefix = 0;
      while (expired_prefix < referrers.size() &&
             referrers[expired_prefix].ts <= cutoff) {
        lost_edges_raw.push_back(
            EdgeDelta{target, referrers[expired_prefix].id});
        ++expired_prefix;
      }
      if (expired_prefix > 0) {
        referrers.erase(referrers.begin(),
                        referrers.begin() +
                            static_cast<std::ptrdiff_t>(expired_prefix));
        Entry& target_entry = *target_it->second;
        if (target_entry.lost_stamp != advance_epoch_) {
          target_entry.lost_stamp = advance_epoch_;
          lost_list.push_back(target);
        }
      }
    }
  }
  for (ElementId id : leavers) MaybeDeactivate(id, &result);
  for (ElementId id : lost_list) MaybeDeactivate(id, &result);

  // --- Phase 3: garbage-collect the archive. ---
  while (!archive_queue_.empty() &&
         archive_queue_.front().second + archive_retention_ <= now_) {
    const auto [id, deactivated_at] = archive_queue_.front();
    archive_queue_.pop_front();
    const auto it = entries_.find(id);
    if (it == entries_.end()) continue;
    // Skip stale queue entries of elements that were resurrected (and
    // possibly re-deactivated, which re-enqueued them).
    if (it->second->active || it->second->deactivated_at != deactivated_at) {
      continue;
    }
    pool_.Destroy(it->second);
    entries_.erase(it);
  }

  FlatHashSet<ElementId>& inserted_set = inserted_set_;
  inserted_set.clear();
  inserted_set.reserve(result.inserted.size());
  for (ElementId id : result.inserted) inserted_set.insert(id);
  FlatHashSet<ElementId>& expired_set = expired_set_;
  expired_set.clear();
  expired_set.reserve(result.expired.size());
  for (ElementId id : result.expired) expired_set.insert(id);
  // Keep the report lists disjoint. An element that entered (or re-entered)
  // A_t and left it within this same call was never visible to the index
  // maintainer, so it must appear in NEITHER inserted/resurrected NOR
  // expired — a far time jump can expire a bucket's own elements.
  FlatHashSet<ElementId>& drop_from_expired = drop_from_expired_;
  drop_from_expired.clear();
  for (ElementId id : result.expired) {
    if (resurrected.erase(id) > 0 || inserted_set.contains(id)) {
      drop_from_expired.insert(id);
    }
  }
  if (!drop_from_expired.empty()) {
    std::erase_if(result.expired, [&](ElementId id) {
      return drop_from_expired.contains(id);
    });
    std::erase_if(result.inserted, [&](ElementId id) {
      return expired_set.contains(id);
    });
  }
  for (ElementId id : resurrected) result.resurrected.push_back(id);
  for (ElementId id : gained_list) {
    if (inserted_set.contains(id) || resurrected.contains(id) ||
        expired_set.contains(id)) {
      continue;
    }
    result.gained_referrer.push_back(id);
  }
  for (ElementId id : lost_list) {
    if (inserted_set.contains(id) || resurrected.contains(id) ||
        expired_set.contains(id)) {
      continue;
    }
    const auto it = entries_.find(id);
    if (it != entries_.end() && it->second->gained_stamp == advance_epoch_) {
      continue;  // a net gain already triggers a reposition
    }
    result.lost_referrer.push_back(id);
  }
  // Report only edges of elements that survive this call as plain active
  // repositions; inserted / resurrected / expired targets are re-scored (or
  // dropped) wholesale by the maintainer. Recorded edge targets were active
  // at recording time, so "still active" reduces to "not expired" — a probe
  // of the small expired set instead of the full element table.
  const auto keeps_edge = [&](const EdgeDelta& edge) {
    return !inserted_set.contains(edge.target) &&
           !resurrected.contains(edge.target) &&
           !expired_set.contains(edge.target);
  };
  for (const EdgeDelta& edge : gained_edges_raw) {
    if (keeps_edge(edge)) result.gained_edges.push_back(edge);
  }
  for (const EdgeDelta& edge : lost_edges_raw) {
    if (keeps_edge(edge)) result.lost_edges.push_back(edge);
  }
  std::sort(result.resurrected.begin(), result.resurrected.end());
  std::sort(result.gained_referrer.begin(), result.gained_referrer.end());
  std::sort(result.lost_referrer.begin(), result.lost_referrer.end());
  std::sort(result.expired.begin(), result.expired.end());
  return result;
}

void ActiveWindow::MaybeDeactivate(ElementId id, UpdateResult* result) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return;
  Entry& entry = *it->second;
  if (!entry.active) return;
  if (entry.element.ts > now_ - window_length_) return;  // still in W_t
  if (!entry.referrers.empty()) return;                  // still referenced
  entry.active = false;
  entry.deactivated_at = now_;
  --num_active_;
  archive_queue_.emplace_back(id, now_);
  result->expired.push_back(id);
}

const SocialElement* ActiveWindow::Find(ElementId id) const {
  const auto it = entries_.find(id);
  if (it == entries_.end() || !it->second->active) return nullptr;
  return &it->second->element;
}

const SocialElement* ActiveWindow::FindIncludingArchived(ElementId id) const {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return nullptr;
  return &it->second->element;
}

bool ActiveWindow::IsActive(ElementId id) const {
  const auto it = entries_.find(id);
  return it != entries_.end() && it->second->active;
}

bool ActiveWindow::IsInWindow(ElementId id) const {
  const auto it = entries_.find(id);
  if (it == entries_.end() || !it->second->active) return false;
  return it->second->element.ts > now_ - window_length_;
}

bool ActiveWindow::IsArchived(ElementId id) const {
  const auto it = entries_.find(id);
  return it != entries_.end() && !it->second->active;
}

const ReferrerList& ActiveWindow::ReferrersOf(ElementId id) const {
  const auto it = entries_.find(id);
  if (it == entries_.end() || !it->second->active) return kNoReferrers;
  return it->second->referrers;
}

Timestamp ActiveWindow::LastReferredAt(ElementId id) const {
  const auto it = entries_.find(id);
  KSIR_CHECK(it != entries_.end() && it->second->active);
  return std::max(it->second->element.ts, it->second->last_ref_time);
}

void ActiveWindow::ForEachActive(
    const std::function<void(const SocialElement&)>& fn) const {
  for (const auto& [id, entry] : entries_) {
    if (entry->active) fn(entry->element);
  }
}

std::vector<ElementId> ActiveWindow::ActiveIds() const {
  std::vector<ElementId> ids;
  ids.reserve(num_active_);
  for (const auto& [id, entry] : entries_) {
    if (entry->active) ids.push_back(id);
  }
  return ids;
}

}  // namespace ksir
