file(REMOVE_RECURSE
  "libksir_text.a"
)
