
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/service/query_planner.cpp" "CMakeFiles/ksir_service.dir/src/service/query_planner.cpp.o" "gcc" "CMakeFiles/ksir_service.dir/src/service/query_planner.cpp.o.d"
  "/root/repo/src/service/result_cache.cpp" "CMakeFiles/ksir_service.dir/src/service/result_cache.cpp.o" "gcc" "CMakeFiles/ksir_service.dir/src/service/result_cache.cpp.o.d"
  "/root/repo/src/service/service.cpp" "CMakeFiles/ksir_service.dir/src/service/service.cpp.o" "gcc" "CMakeFiles/ksir_service.dir/src/service/service.cpp.o.d"
  "/root/repo/src/service/shard_router.cpp" "CMakeFiles/ksir_service.dir/src/service/shard_router.cpp.o" "gcc" "CMakeFiles/ksir_service.dir/src/service/shard_router.cpp.o.d"
  "/root/repo/src/service/sharded_ingestor.cpp" "CMakeFiles/ksir_service.dir/src/service/sharded_ingestor.cpp.o" "gcc" "CMakeFiles/ksir_service.dir/src/service/sharded_ingestor.cpp.o.d"
  "/root/repo/src/service/worker_pool.cpp" "CMakeFiles/ksir_service.dir/src/service/worker_pool.cpp.o" "gcc" "CMakeFiles/ksir_service.dir/src/service/worker_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-bench/CMakeFiles/ksir_core.dir/DependInfo.cmake"
  "/root/repo/build-bench/CMakeFiles/ksir_window.dir/DependInfo.cmake"
  "/root/repo/build-bench/CMakeFiles/ksir_stream.dir/DependInfo.cmake"
  "/root/repo/build-bench/CMakeFiles/ksir_topic.dir/DependInfo.cmake"
  "/root/repo/build-bench/CMakeFiles/ksir_text.dir/DependInfo.cmake"
  "/root/repo/build-bench/CMakeFiles/ksir_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
