// Proxy user study (Table 5 substitution, DESIGN.md §3).
//
// The paper recruits 30 volunteers; 3 raters rank each query's five result
// sets on two aspects — representativeness and impact — mapped to 1..5, and
// reports per-method averages plus Cohen's weighted kappa. Humans cannot be
// reproduced mechanically, so this module keeps the *protocol* and drives
// the rankings from the measurable quantities the aspects describe:
//   representativeness_raw = topical relevance + information coverage
//   impact_raw             = in-window reference count of the result set
// Each simulated rater perturbs the raw scores with deterministic
// log-normal noise (individual taste) before ranking, which yields the
// kappa-style partial agreement the paper reports.
#ifndef KSIR_EVAL_USER_STUDY_H_
#define KSIR_EVAL_USER_STUDY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/sparse_vector.h"
#include "common/status.h"
#include "common/types.h"
#include "window/active_window.h"

namespace ksir {

/// One method's result set for one query.
struct StudyEntry {
  std::string method;
  std::vector<ElementId> result_set;
};

/// Proxy-rater configuration.
struct UserStudyOptions {
  std::int32_t raters_per_query = 3;
  /// Rater disagreement: additive Gaussian noise with standard deviation
  /// rater_noise x (spread of the raw scores across methods). 0 makes all
  /// raters identical (kappa 1); the default lands the mean pairwise kappa
  /// in the 0.5-0.9 band the paper reports.
  double rater_noise = 0.4;
  std::uint64_t seed = 23;
};

/// Aggregated study output for one method.
struct MethodRating {
  std::string method;
  double representativeness = 0.0;  // mean rating in [1, 5]
  double impact = 0.0;              // mean rating in [1, 5]
};

/// Full study output.
struct UserStudyResult {
  std::vector<MethodRating> ratings;
  /// Mean pairwise linearly weighted kappa across raters.
  double kappa_representativeness = 0.0;
  double kappa_impact = 0.0;
};

/// Runs the proxy study over `queries` (each query = the competing methods'
/// result sets plus the query vector). Every query must list the same
/// methods in the same order.
StatusOr<UserStudyResult> RunProxyUserStudy(
    const ActiveWindow& window,
    const std::vector<std::vector<StudyEntry>>& queries,
    const std::vector<SparseVector>& query_vectors,
    UserStudyOptions options = {});

}  // namespace ksir

#endif  // KSIR_EVAL_USER_STUDY_H_
