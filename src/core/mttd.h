// Multi-Topic ThresholdDescend (paper Algorithm 3).
//
// A single candidate grown over rounds of geometrically descending
// thresholds tau; elements retrieved from the ranked lists are buffered and
// may be re-evaluated in later rounds (lazy marginal gains are upper bounds
// by submodularity). Guarantees a (1 - 1/e - eps)-approximation.
#ifndef KSIR_CORE_MTTD_H_
#define KSIR_CORE_MTTD_H_

#include "core/query.h"
#include "core/ranked_list.h"
#include "core/scoring.h"

namespace ksir {

/// Runs MTTD for `query` against the current index state. The query's
/// epsilon must be in (0, 1).
QueryResult RunMttd(const ScoringContext& ctx, const RankedListIndex& index,
                    const KsirQuery& query);

}  // namespace ksir

#endif  // KSIR_CORE_MTTD_H_
