// Multi-Topic ThresholdStream (paper Algorithm 2).
//
// SieveStreaming-style geometric threshold candidates fed by the best-first
// ranked-list traversal; terminates as soon as the upper bound of any
// unevaluated element falls below the smallest unfilled candidate threshold.
// Guarantees a (1/2 - eps)-approximation and evaluates each active element
// at most once.
#ifndef KSIR_CORE_MTTS_H_
#define KSIR_CORE_MTTS_H_

#include "core/query.h"
#include "core/ranked_list.h"
#include "core/scoring.h"

namespace ksir {

/// Runs MTTS for `query` against the current index state. The query's
/// epsilon must be in (0, 1).
QueryResult RunMtts(const ScoringContext& ctx, const RankedListIndex& index,
                    const KsirQuery& query);

}  // namespace ksir

#endif  // KSIR_CORE_MTTS_H_
