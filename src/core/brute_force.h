// Exhaustive k-SIR solver: enumerates every size-min(k, n) subset of the
// active elements. Exponential; exists solely as the exact oracle for the
// approximation-ratio tests (the k-SIR query is NP-hard, Theorem 3.8).
#ifndef KSIR_CORE_BRUTE_FORCE_H_
#define KSIR_CORE_BRUTE_FORCE_H_

#include "core/query.h"
#include "core/scoring.h"
#include "window/active_window.h"

namespace ksir {

/// Returns the optimal result S* and OPT = f(S*, x). Aborts (by design) on
/// instances with more than a few dozen active elements.
QueryResult RunBruteForce(const ScoringContext& ctx,
                          const ActiveWindow& window, const KsirQuery& query);

}  // namespace ksir

#endif  // KSIR_CORE_BRUTE_FORCE_H_
