// SieveStreaming (Badanidiyuru et al., KDD 2014): single-pass streaming
// submodular maximization with geometric threshold candidates. The paper's
// strongest streaming baseline; (1/2 - eps)-approximate. Unlike MTTS it has
// no ranked lists, so it must evaluate every active element.
#ifndef KSIR_CORE_SIEVE_STREAMING_H_
#define KSIR_CORE_SIEVE_STREAMING_H_

#include "core/query.h"
#include "core/scoring.h"
#include "window/active_window.h"

namespace ksir {

/// Runs SieveStreaming over the active elements (in id order, which models
/// an arbitrary stream order deterministically).
QueryResult RunSieveStreaming(const ScoringContext& ctx,
                              const ActiveWindow& window,
                              const KsirQuery& query);

}  // namespace ksir

#endif  // KSIR_CORE_SIEVE_STREAMING_H_
