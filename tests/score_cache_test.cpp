// ScoreCache equivalence and staleness-direction tests.
//
// The incremental maintenance paths (ScoreMaintenance::kIncremental, in all
// three flavors: handle-carrying batched, id-keyed batched, and
// single-reposition) must be observationally identical to the
// full-recompute baseline (ScoreMaintenance::kRecompute) after arbitrary
// Advance sequences —
// insertions, referrer gains, referrer expiry, element expiry and
// resurrection, under both RefreshModes — and under RefreshMode::kPaper the
// listed scores may only ever be stale-HIGH (sound upper bounds), never
// stale-low.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/engine.h"
#include "runtime/worker_pool.h"
#include "stream/element.h"
#include "stream_gen.h"
#include "topic/topic_model.h"

namespace ksir {
namespace {

constexpr int kNumTopics = 4;
constexpr double kTol = 1e-9;

TopicModel MakeModel(Rng* rng) { return testing::MakeModel(rng); }

SocialElement RandomElement(Rng* rng, ElementId id, Timestamp ts,
                            const std::vector<ElementId>& history,
                            std::size_t ref_reach) {
  testing::StreamGenConfig config;
  config.ref_reach = ref_reach;
  return testing::RandomElement(rng, id, ts, history, config);
}

/// Feeds the same random stream to six engines bucket by bucket — the
/// handle-carrying batched path (production default), the PARALLEL staged
/// apply over that same path (maintenance_threads = 3), the AFFINE flavor
/// of the parallel apply (maintenance_threads = 4 on an externally shared
/// CPU-pinned pool: topic-sharded expiry + gather + list apply riding
/// ParallelRunAffine), the id-keyed batched path (the PR 3 baseline), the
/// single-reposition path (the PR 2 baseline) and the recompute baseline —
/// checking list-state equality after every advance. The five incremental
/// engines must agree bitwise (they compose identical doubles from the
/// same cache, and the parallel stages replay the serial per-list
/// operation order exactly); recompute agrees within kTol.
void RunEquivalenceStream(std::uint64_t seed, RefreshMode mode) {
  Rng rng(seed);
  TopicModel model = MakeModel(&rng);

  EngineConfig base;
  base.scoring.lambda = 0.4;
  base.scoring.eta = 2.0;
  base.window_length = 6;
  base.bucket_length = 2;
  base.archive_retention = 10;  // > T: keeps targets resurrectable
  base.refresh_mode = mode;

  EngineConfig handle_config = base;
  handle_config.score_maintenance = ScoreMaintenance::kIncremental;
  // Every reposition goes through the merge sweep, positions carried as
  // handles (the production default)...
  handle_config.reposition_batch_min = 1;
  handle_config.carry_handles = true;
  // ...vs. the staged parallel apply of the same pipeline...
  EngineConfig parallel_config = handle_config;
  parallel_config.maintenance_threads = 3;
  // ...vs. the same staged apply at a different worker count, on a shared
  // pool with CPU pinning requested (exercises SubmitTo placement, the
  // steal path, and pin fallback on restricted runners — determinism must
  // not depend on where the shards physically run)...
  EngineConfig affine_config = handle_config;
  affine_config.maintenance_threads = 4;
  // ...vs. the same sweep resolving every tuple by id (PR 3)...
  EngineConfig batched_config = handle_config;
  batched_config.carry_handles = false;
  // ...vs. no batching at all (the PR 2 single-reposition reference path).
  EngineConfig single_config = handle_config;
  single_config.reposition_batch_min = 0;
  EngineConfig recompute_config = base;
  recompute_config.score_maintenance = ScoreMaintenance::kRecompute;

  KsirEngine handle(handle_config, &model);
  KsirEngine parallel(parallel_config, &model);
  auto affine_pool = MakeWorkerPool(3, 1, nullptr, PoolOptions{true});
  KsirEngine affine(affine_config, &model, affine_pool.get());
  KsirEngine batched(batched_config, &model);
  KsirEngine single(single_config, &model);
  KsirEngine recompute(recompute_config, &model);

  ElementId next_id = 1;
  std::vector<ElementId> history;
  for (Timestamp bucket_end = 2; bucket_end <= 40; bucket_end += 2) {
    std::vector<SocialElement> bucket;
    const int count = static_cast<int>(rng.NextUint64(4));
    for (int i = 0; i < count; ++i) {
      const Timestamp ts =
          bucket_end - 1 + static_cast<Timestamp>(rng.NextUint64(2));
      bucket.push_back(
          RandomElement(&rng, next_id++, ts, history, /*ref_reach=*/12));
      history.push_back(bucket.back().id);
    }
    std::sort(bucket.begin(), bucket.end(),
              [](const SocialElement& a, const SocialElement& b) {
                return a.ts < b.ts;
              });
    ASSERT_TRUE(handle.AdvanceTo(bucket_end, bucket).ok());
    ASSERT_TRUE(parallel.AdvanceTo(bucket_end, bucket).ok());
    ASSERT_TRUE(affine.AdvanceTo(bucket_end, bucket).ok());
    ASSERT_TRUE(batched.AdvanceTo(bucket_end, bucket).ok());
    ASSERT_TRUE(single.AdvanceTo(bucket_end, bucket).ok());
    ASSERT_TRUE(recompute.AdvanceTo(bucket_end, std::move(bucket)).ok());

    // Same active set, same index membership, same tuples.
    const auto& iw = handle.window();
    const auto& rw = recompute.window();
    ASSERT_EQ(iw.num_active(), rw.num_active()) << "t=" << bucket_end;
    ASSERT_EQ(handle.index().num_elements(),
              recompute.index().num_elements());
    ASSERT_EQ(handle.index().total_entries(),
              recompute.index().total_entries());
    ASSERT_EQ(handle.index().total_entries(),
              parallel.index().total_entries());
    ASSERT_EQ(handle.index().total_entries(),
              affine.index().total_entries());
    ASSERT_EQ(handle.index().total_entries(),
              batched.index().total_entries());
    ASSERT_EQ(handle.index().total_entries(),
              single.index().total_entries());
    for (ElementId id : iw.ActiveIds()) {
      const SocialElement* e = iw.Find(id);
      ASSERT_NE(e, nullptr);
      for (const auto& [topic, prob] : e->topics.entries()) {
        ASSERT_TRUE(handle.index().list(topic).Contains(id))
            << "t=" << bucket_end << " e=" << id;
        ASSERT_TRUE(recompute.index().list(topic).Contains(id));
        const double lhs = handle.index().list(topic).Get(id);
        const double aff = affine.index().list(topic).Get(id);
        const double bat = batched.index().list(topic).Get(id);
        const double mid = single.index().list(topic).Get(id);
        const double rhs = recompute.index().list(topic).Get(id);
        // The incremental paths must agree EXACTLY.
        EXPECT_EQ(lhs, aff)
            << "t=" << bucket_end << " e=" << id << " topic=" << topic;
        EXPECT_EQ(lhs, bat)
            << "t=" << bucket_end << " e=" << id << " topic=" << topic;
        EXPECT_EQ(lhs, mid)
            << "t=" << bucket_end << " e=" << id << " topic=" << topic;
        EXPECT_NEAR(lhs, rhs, kTol)
            << "t=" << bucket_end << " e=" << id << " topic=" << topic;
        if (mode == RefreshMode::kExact) {
          // All paths must equal a from-scratch delta_i(e).
          EXPECT_NEAR(lhs,
                      handle.scoring().TopicScore(topic, *e, prob), kTol);
        }
      }
      // t_e is per element; all engines must agree exactly.
      EXPECT_EQ(handle.index().TimeOf(id), parallel.index().TimeOf(id))
          << "t=" << bucket_end << " e=" << id;
      EXPECT_EQ(handle.index().TimeOf(id), affine.index().TimeOf(id))
          << "t=" << bucket_end << " e=" << id;
      EXPECT_EQ(handle.index().TimeOf(id), batched.index().TimeOf(id))
          << "t=" << bucket_end << " e=" << id;
      EXPECT_EQ(handle.index().TimeOf(id), single.index().TimeOf(id));
      EXPECT_EQ(handle.index().TimeOf(id), recompute.index().TimeOf(id));
    }
    // The whole key sequence of every list must match across the five
    // incremental engines (same order, bitwise-equal scores).
    for (TopicId topic = 0; topic < kNumTopics; ++topic) {
      const auto& hlist = handle.index().list(topic);
      const auto& plist = parallel.index().list(topic);
      const auto& alist = affine.index().list(topic);
      const auto& blist = batched.index().list(topic);
      const auto& slist = single.index().list(topic);
      ASSERT_EQ(hlist.size(), plist.size());
      ASSERT_EQ(hlist.size(), alist.size());
      ASSERT_EQ(hlist.size(), blist.size());
      ASSERT_EQ(hlist.size(), slist.size());
      auto pit = plist.begin();
      auto ait = alist.begin();
      auto bit = blist.begin();
      auto sit = slist.begin();
      for (const auto& key : hlist) {
        ASSERT_EQ(key.id, pit->id) << "t=" << bucket_end << " topic=" << topic;
        ASSERT_EQ(key.score, pit->score);
        ASSERT_EQ(key.id, ait->id) << "t=" << bucket_end << " topic=" << topic;
        ASSERT_EQ(key.score, ait->score);
        ASSERT_EQ(key.id, bit->id) << "t=" << bucket_end << " topic=" << topic;
        ASSERT_EQ(key.score, bit->score);
        ASSERT_EQ(key.id, sit->id) << "t=" << bucket_end << " topic=" << topic;
        ASSERT_EQ(key.score, sit->score);
        ++pit;
        ++ait;
        ++bit;
        ++sit;
      }
    }
  }

  // Query results must be identical down to the reported ids.
  KsirQuery query;
  query.k = 4;
  query.epsilon = 0.2;
  query.x = SparseVector::TruncateAndNormalize(
      rng.NextDirichlet(0.5, kNumTopics), 0.1);
  for (const Algorithm algorithm :
       {Algorithm::kMtts, Algorithm::kMttd, Algorithm::kCelf,
        Algorithm::kTopkRepresentative}) {
    query.algorithm = algorithm;
    const auto lhs = handle.Query(query);
    const auto par = parallel.Query(query);
    const auto aff = affine.Query(query);
    const auto bat = batched.Query(query);
    const auto mid = single.Query(query);
    const auto rhs = recompute.Query(query);
    ASSERT_TRUE(lhs.ok());
    ASSERT_TRUE(par.ok());
    ASSERT_TRUE(aff.ok());
    ASSERT_TRUE(bat.ok());
    ASSERT_TRUE(mid.ok());
    ASSERT_TRUE(rhs.ok());
    EXPECT_EQ(lhs->element_ids, par->element_ids) << AlgorithmName(algorithm);
    EXPECT_EQ(lhs->score, par->score) << AlgorithmName(algorithm);
    EXPECT_EQ(lhs->element_ids, aff->element_ids) << AlgorithmName(algorithm);
    EXPECT_EQ(lhs->score, aff->score) << AlgorithmName(algorithm);
    EXPECT_EQ(lhs->element_ids, bat->element_ids) << AlgorithmName(algorithm);
    EXPECT_EQ(lhs->score, bat->score) << AlgorithmName(algorithm);
    EXPECT_EQ(lhs->element_ids, mid->element_ids) << AlgorithmName(algorithm);
    EXPECT_EQ(lhs->score, mid->score) << AlgorithmName(algorithm);
    EXPECT_EQ(lhs->element_ids, rhs->element_ids)
        << AlgorithmName(algorithm);
    EXPECT_NEAR(lhs->score, rhs->score, kTol) << AlgorithmName(algorithm);
  }
}

class ScoreCacheEquivalenceTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScoreCacheEquivalenceTest, ExactModeMatchesRecompute) {
  RunEquivalenceStream(GetParam(), RefreshMode::kExact);
}

TEST_P(ScoreCacheEquivalenceTest, PaperModeMatchesRecompute) {
  RunEquivalenceStream(GetParam(), RefreshMode::kPaper);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScoreCacheEquivalenceTest,
                         ::testing::Range<std::uint64_t>(1, 9));

// ------------------------------------------ kPaper staleness direction ----

TEST(ScoreCachePaperModeTest, ListedScoresNeverStaleLow) {
  // Under kPaper with incremental maintenance, every listed score must stay
  // an upper bound on the true delta_i(e) across a long random stream (the
  // stale-high invariant that keeps threshold pruning sound).
  Rng rng(77);
  TopicModel model = MakeModel(&rng);
  EngineConfig config;
  config.scoring.eta = 2.0;
  config.window_length = 6;
  config.bucket_length = 2;
  config.archive_retention = 10;
  config.refresh_mode = RefreshMode::kPaper;
  config.score_maintenance = ScoreMaintenance::kIncremental;
  KsirEngine engine(config, &model);

  ElementId next_id = 1;
  std::vector<ElementId> history;
  bool saw_stale = false;
  for (Timestamp bucket_end = 2; bucket_end <= 60; bucket_end += 2) {
    std::vector<SocialElement> bucket;
    const int count = static_cast<int>(rng.NextUint64(4));
    for (int i = 0; i < count; ++i) {
      const Timestamp ts =
          bucket_end - 1 + static_cast<Timestamp>(rng.NextUint64(2));
      bucket.push_back(
          RandomElement(&rng, next_id++, ts, history, /*ref_reach=*/12));
      history.push_back(bucket.back().id);
    }
    std::sort(bucket.begin(), bucket.end(),
              [](const SocialElement& a, const SocialElement& b) {
                return a.ts < b.ts;
              });
    ASSERT_TRUE(engine.AdvanceTo(bucket_end, std::move(bucket)).ok());
    for (ElementId id : engine.window().ActiveIds()) {
      const SocialElement* e = engine.window().Find(id);
      for (const auto& [topic, prob] : e->topics.entries()) {
        const double listed = engine.index().list(topic).Get(id);
        const double exact = engine.scoring().TopicScore(topic, *e, prob);
        EXPECT_GE(listed, exact - kTol)
            << "stale-LOW bound at t=" << bucket_end << " e=" << id;
        if (listed > exact + kTol) saw_stale = true;
      }
    }
  }
  // The stream is long enough that staleness actually occurred; otherwise
  // this test would vacuously pass.
  EXPECT_TRUE(saw_stale);
}

TEST(SameCallLifetimeTest, FarJumpInsertAndExpireDoesNotBreakMaintenance) {
  // Engine-level regression for the disjointness contract: a bucket whose
  // element is already outside the window at the bucket's end must not make
  // the maintainer erase a never-indexed element (abort) in either mode.
  Rng rng(5);
  TopicModel model = MakeModel(&rng);
  for (const ScoreMaintenance maintenance :
       {ScoreMaintenance::kIncremental, ScoreMaintenance::kRecompute}) {
    EngineConfig config;
    config.scoring.eta = 2.0;
    config.window_length = 4;
    config.bucket_length = 1;
    config.score_maintenance = maintenance;
    KsirEngine engine(config, &model);
    std::vector<ElementId> history;
    ASSERT_TRUE(
        engine
            .AdvanceTo(1, {RandomElement(&rng, 1, 1, history, /*ref_reach=*/4)})
            .ok());
    // Jump to t=100 with an element at ts=95: it leaves W_t immediately.
    ASSERT_TRUE(
        engine
            .AdvanceTo(100,
                       {RandomElement(&rng, 2, 95, history, /*ref_reach=*/4)})
            .ok());
    EXPECT_EQ(engine.index().num_elements(), 0u);
    EXPECT_EQ(engine.window().num_active(), 0u);
    // The archived element is resurrectable and re-enters the index.
    SocialElement e3;
    e3.id = 3;
    e3.ts = 101;
    e3.doc = Document::FromWordIds({0});
    e3.topics = SparseVector::FromEntries({{0, 1.0}});
    e3.refs = {2};
    ASSERT_TRUE(engine.AdvanceTo(101, {e3}).ok());
    EXPECT_TRUE(engine.window().IsActive(2));
    EXPECT_EQ(engine.index().num_elements(), 2u);
  }
}

TEST(ScoreCachePaperModeTest, NextGainRepositionsToExactScore) {
  // Regression: under kPaper the cache must keep absorbing lost edges even
  // though the lists are not repositioned, so the *next* gained edge lands
  // the listed score exactly on the true delta_i(e) — not on a value that
  // still contains the expired referrer.
  auto model = TopicModel::FromMatrix({{0.5, 0.5}});
  ASSERT_TRUE(model.ok());
  EngineConfig config;
  config.scoring.lambda = 0.5;
  config.scoring.eta = 2.0;
  config.window_length = 4;
  config.bucket_length = 1;
  config.refresh_mode = RefreshMode::kPaper;
  config.score_maintenance = ScoreMaintenance::kIncremental;
  KsirEngine engine(config, &*model);

  auto mk = [](ElementId id, Timestamp ts, std::vector<ElementId> refs) {
    SocialElement e;
    e.id = id;
    e.ts = ts;
    e.doc = Document::FromWordIds({0});
    e.refs = std::move(refs);
    e.topics = SparseVector::FromEntries({{0, 1.0}});
    return e;
  };
  ASSERT_TRUE(engine.AdvanceTo(1, {mk(1, 1, {})}).ok());
  ASSERT_TRUE(engine.AdvanceTo(2, {mk(2, 2, {1})}).ok());
  ASSERT_TRUE(engine.AdvanceTo(5, {mk(3, 5, {1})}).ok());
  // t=6: e2 expires out of the window; e1 loses that referral but keeps e3.
  ASSERT_TRUE(engine.AdvanceTo(6, {}).ok());
  const SocialElement* e1 = engine.window().Find(1);
  ASSERT_NE(e1, nullptr);
  EXPECT_GT(engine.index().list(0).Get(1),
            engine.scoring().TopicScore(0, *e1));  // stale-high, by design
  // t=7: e4 refers to e1 -> gained edge -> reposition. The listed score
  // must now equal the exact recomputation (loss of e2 plus gain of e4).
  ASSERT_TRUE(engine.AdvanceTo(7, {mk(4, 7, {1})}).ok());
  e1 = engine.window().Find(1);
  ASSERT_NE(e1, nullptr);
  EXPECT_NEAR(engine.index().list(0).Get(1),
              engine.scoring().TopicScore(0, *e1), 1e-12);
}

}  // namespace
}  // namespace ksir
