// Lightweight always-on invariant checking (the library is exception-free;
// a failed check is a programming error and aborts with a message).
#ifndef KSIR_COMMON_CHECK_H_
#define KSIR_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace ksir::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "KSIR_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace ksir::internal

/// Aborts the process when `expr` is false. Used for internal invariants
/// whose violation indicates a bug, never for recoverable input errors
/// (those return Status).
#define KSIR_CHECK(expr)                                       \
  do {                                                         \
    if (!(expr)) {                                             \
      ::ksir::internal::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                          \
  } while (false)

/// Debug-only variant of KSIR_CHECK.
#ifdef NDEBUG
#define KSIR_DCHECK(expr) \
  do {                    \
  } while (false)
#else
#define KSIR_DCHECK(expr) KSIR_CHECK(expr)
#endif

#endif  // KSIR_COMMON_CHECK_H_
