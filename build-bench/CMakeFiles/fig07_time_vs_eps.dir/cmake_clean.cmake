file(REMOVE_RECURSE
  "CMakeFiles/fig07_time_vs_eps.dir/bench/fig07_time_vs_eps.cpp.o"
  "CMakeFiles/fig07_time_vs_eps.dir/bench/fig07_time_vs_eps.cpp.o.d"
  "fig07_time_vs_eps"
  "fig07_time_vs_eps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_time_vs_eps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
