file(REMOVE_RECURSE
  "CMakeFiles/ksir_text.dir/src/text/corpus.cpp.o"
  "CMakeFiles/ksir_text.dir/src/text/corpus.cpp.o.d"
  "CMakeFiles/ksir_text.dir/src/text/document.cpp.o"
  "CMakeFiles/ksir_text.dir/src/text/document.cpp.o.d"
  "CMakeFiles/ksir_text.dir/src/text/stopwords.cpp.o"
  "CMakeFiles/ksir_text.dir/src/text/stopwords.cpp.o.d"
  "CMakeFiles/ksir_text.dir/src/text/tokenizer.cpp.o"
  "CMakeFiles/ksir_text.dir/src/text/tokenizer.cpp.o.d"
  "CMakeFiles/ksir_text.dir/src/text/vocabulary.cpp.o"
  "CMakeFiles/ksir_text.dir/src/text/vocabulary.cpp.o.d"
  "libksir_text.a"
  "libksir_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksir_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
