file(REMOVE_RECURSE
  "CMakeFiles/ranked_list_test.dir/tests/ranked_list_test.cpp.o"
  "CMakeFiles/ranked_list_test.dir/tests/ranked_list_test.cpp.o.d"
  "ranked_list_test"
  "ranked_list_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranked_list_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
