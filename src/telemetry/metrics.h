// Low-overhead metrics registry: named counters, gauges and fixed-bucket
// latency histograms.
//
// The hot-path contract is that recording NEVER contends: every counter and
// histogram is split into kMetricShards cache-line-aligned shards, each
// thread writes the shard picked by its round-robin thread slot with one
// relaxed atomic RMW, and readers merge the shards at snapshot time. A
// snapshot is therefore per-cell consistent (each cell is an atomic sum)
// but not cross-cell consistent — exactly the semantics the pre-telemetry
// stats structs already had. Metric objects are registered once (cold path,
// registry mutex) and addressed by pointer afterwards, so steady-state
// recording performs zero hashing and zero locking.
#ifndef KSIR_TELEMETRY_METRICS_H_
#define KSIR_TELEMETRY_METRICS_H_

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ksir {

/// Write-side shards per metric. Sized for the worker counts the runtime
/// layer actually runs (maintenance stages and shard fan-outs are 2-8
/// participants); more threads than shards just share slots, which is
/// correct (atomic RMW) merely slower.
inline constexpr std::size_t kMetricShards = 8;

/// The calling thread's metric shard: a process-wide round-robin slot,
/// assigned on first use, folded onto [0, kMetricShards). Round-robin (not
/// thread-id hashing) so up to kMetricShards concurrent workers are
/// guaranteed collision-free.
inline std::size_t MetricShardIndex() {
  static std::atomic<std::size_t> next_slot{0};
  thread_local const std::size_t slot =
      next_slot.fetch_add(1, std::memory_order_relaxed);
  return slot % kMetricShards;
}

/// Lock-free add for a double stored as its bit pattern in an atomic
/// uint64 (std::atomic<double>::fetch_add is C++20 but not lock-free
/// everywhere; the CAS loop is portable and contention-free under the
/// sharding above).
inline void AtomicBitsAddDouble(std::atomic<std::uint64_t>* cell,
                                double delta) {
  std::uint64_t observed = cell->load(std::memory_order_relaxed);
  for (;;) {
    const std::uint64_t desired =
        std::bit_cast<std::uint64_t>(std::bit_cast<double>(observed) + delta);
    if (cell->compare_exchange_weak(observed, desired,
                                    std::memory_order_relaxed)) {
      return;
    }
  }
}

/// Monotone counter. Add() is one relaxed fetch_add on the caller's shard;
/// Value() sums the shards (racy-by-design point-in-time read).
class Counter {
 public:
  void Add(std::int64_t n = 1) {
    shards_[MetricShardIndex()].value.fetch_add(n,
                                                std::memory_order_relaxed);
  }

  std::int64_t Value() const {
    std::int64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  /// One cache line per shard: a counter's shards are written by different
  /// threads concurrently, and within a registry arena neighboring metrics'
  /// shards would otherwise share lines. alignas(64) both aligns the shard
  /// AND pads sizeof to a 64-byte multiple (sizeof is always a multiple of
  /// alignof), so shard i and shard i+1 can never false-share.
  struct alignas(64) Shard {
    std::atomic<std::int64_t> value{0};
  };
  static_assert(alignof(Shard) == 64 && sizeof(Shard) == 64,
                "Counter shards must each own a full cache line; a smaller "
                "shard would false-share with its neighbor and serialize "
                "every hot-path Add across workers");

  Shard shards_[kMetricShards];
};

/// Last-value gauge (queue depths, pool sizes). A single cell — gauges are
/// set from one writer at a time (e.g. under the pool mutex) and only need
/// torn-free reads, not contention-free increments. alignas keeps the cell
/// off its registry neighbors' lines.
class alignas(64) Gauge {
 public:
  void Set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Histogram bucket upper bounds in SECONDS, shared by every histogram:
/// 250 ns to ~8.4 s, log-2 spaced, plus an implicit overflow bucket. Fixed
/// global bounds keep the shard layout a compile-time array (no per-metric
/// allocation, static_assert-able padding) and make every histogram
/// mergeable with every other.
inline constexpr double kLatencyBoundsSeconds[] = {
    2.5e-7,    5e-7,      1e-6,      2e-6,      4e-6,      8e-6,
    1.6e-5,    3.2e-5,    6.4e-5,    1.28e-4,   2.56e-4,   5.12e-4,
    1.024e-3,  2.048e-3,  4.096e-3,  8.192e-3,  1.6384e-2, 3.2768e-2,
    6.5536e-2, 1.31072e-1, 2.62144e-1, 5.24288e-1, 1.048576, 2.097152,
    4.194304,  8.388608,
};
inline constexpr std::size_t kNumLatencyBounds =
    sizeof(kLatencyBoundsSeconds) / sizeof(double);
/// Bucket count including the overflow bucket.
inline constexpr std::size_t kNumHistogramBuckets = kNumLatencyBounds + 1;

/// Merged read-side view of one histogram (see Histogram::Snapshot).
struct HistogramSnapshot {
  /// counts[i] covers (bounds[i-1], bounds[i]]; the last entry is the
  /// overflow bucket.
  std::vector<std::int64_t> counts;
  double sum = 0.0;
  std::int64_t count = 0;

  /// Quantile estimate by linear interpolation inside the covering bucket
  /// (the standard Prometheus histogram_quantile estimator). Returns 0 for
  /// an empty histogram; values in the overflow bucket clamp to the top
  /// bound.
  double Percentile(double q) const;
};

/// Fixed-bucket latency histogram. Record() touches only the caller's
/// shard: one relaxed fetch_add on the bucket cell plus one CAS on the
/// shard-local sum.
class Histogram {
 public:
  void Record(double seconds) {
    Shard& shard = shards_[MetricShardIndex()];
    shard.counts[BucketOf(seconds)].fetch_add(1, std::memory_order_relaxed);
    AtomicBitsAddDouble(&shard.sum_bits, seconds);
  }

  /// Merges all shards into one point-in-time view.
  HistogramSnapshot Snapshot() const;

  static std::size_t BucketOf(double seconds) {
    // Branch-predictable linear scan is beaten by binary search at this
    // bound count; 26 doubles fit in two cache lines either way.
    std::size_t lo = 0;
    std::size_t hi = kNumLatencyBounds;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (seconds <= kLatencyBoundsSeconds[mid]) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;  // == kNumLatencyBounds -> overflow bucket
  }

 private:
  /// Shard layout: 27 bucket cells plus the sum cell is 224 bytes;
  /// alignas(64) pads sizeof to 256 so consecutive shards (written by
  /// different workers) start on distinct cache lines and never share one.
  struct alignas(64) Shard {
    std::atomic<std::int64_t> counts[kNumHistogramBuckets] = {};
    std::atomic<std::uint64_t> sum_bits{0};
  };
  static_assert(alignof(Shard) == 64 && sizeof(Shard) % 64 == 0,
                "Histogram shards must start and end on cache-line "
                "boundaries; an unpadded shard would false-share its last "
                "cells with the next worker's first cells");

  Shard shards_[kMetricShards];
};

enum class MetricType { kCounter, kGauge, kHistogram };

/// Point-in-time copy of one registered metric.
struct MetricSnapshot {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  /// Counter / gauge value (unset for histograms).
  std::int64_t value = 0;
  /// Histogram view (empty for counters / gauges).
  HistogramSnapshot histogram;
};

/// Point-in-time copy of the whole registry, sorted by name.
struct RegistrySnapshot {
  std::vector<MetricSnapshot> metrics;

  /// nullptr when `name` is not present.
  const MetricSnapshot* Find(std::string_view name) const;
};

/// Named directory of metrics. Get-or-create by name: asking twice for the
/// same name returns the SAME object (that is what lets N shard engines
/// aggregate into one process view), asking with a different type for an
/// existing name is a programming error and aborts. Registration takes the
/// registry mutex — do it at construction time, never on the hot path; the
/// returned pointers are stable for the registry's lifetime.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  Counter* GetCounter(std::string_view name, std::string_view help = "");
  Gauge* GetGauge(std::string_view name, std::string_view help = "");
  Histogram* GetHistogram(std::string_view name, std::string_view help = "");

  /// Merged point-in-time copy of every metric, sorted by name. Safe to
  /// call concurrently with recording.
  RegistrySnapshot Snapshot() const;

 private:
  struct Entry {
    std::string name;
    std::string help;
    MetricType type;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* GetOrCreate(std::string_view name, std::string_view help,
                     MetricType type);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;
  std::unordered_map<std::string_view, Entry*> by_name_;
};

}  // namespace ksir

#endif  // KSIR_TELEMETRY_METRICS_H_
