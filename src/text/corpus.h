// Document collection with the aggregate statistics used for topic model
// training and TF-IDF weighting.
#ifndef KSIR_TEXT_CORPUS_H_
#define KSIR_TEXT_CORPUS_H_

#include <cstdint>
#include <vector>

#include "text/document.h"
#include "text/vocabulary.h"

namespace ksir {

/// A corpus owns its documents and tracks per-word document frequencies.
/// The vocabulary is owned by the caller (it usually outlives the corpus and
/// is shared with the streaming engine).
class Corpus {
 public:
  explicit Corpus(const Vocabulary* vocab);

  /// Appends a document and updates document-frequency statistics.
  void Add(Document doc);

  const std::vector<Document>& documents() const { return documents_; }
  std::size_t size() const { return documents_.size(); }

  /// Number of documents containing `word` at least once.
  std::int64_t DocumentFrequency(WordId word) const;

  /// Total number of tokens over all documents.
  std::int64_t total_tokens() const { return total_tokens_; }

  /// Average document length (0 when empty).
  double AverageLength() const;

  const Vocabulary& vocabulary() const { return *vocab_; }

 private:
  const Vocabulary* vocab_;
  std::vector<Document> documents_;
  std::vector<std::int64_t> doc_freq_;
  std::int64_t total_tokens_ = 0;
};

}  // namespace ksir

#endif  // KSIR_TEXT_CORPUS_H_
