file(REMOVE_RECURSE
  "CMakeFiles/hotpath_bench.dir/bench/hotpath_bench.cpp.o"
  "CMakeFiles/hotpath_bench.dir/bench/hotpath_bench.cpp.o.d"
  "hotpath_bench"
  "hotpath_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotpath_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
