// Concept-drift monitoring (paper Section 3.1: "We need to retrain the
// topic model from recent elements when it is outdated due to concept
// drift"; the conclusion lists incremental topic-model updates as future
// work). The monitor compares the model's corpus-level topic prior with the
// empirical topic usage of the most recent elements and recommends
// retraining when the Hellinger distance exceeds a threshold.
#ifndef KSIR_TOPIC_DRIFT_H_
#define KSIR_TOPIC_DRIFT_H_

#include <cstddef>
#include <deque>
#include <vector>

#include "common/sparse_vector.h"
#include "topic/topic_model.h"

namespace ksir {

/// Drift-detector configuration.
struct ConceptDriftOptions {
  /// Number of most recent elements contributing to the empirical
  /// distribution.
  std::size_t window_size = 2000;
  /// Hellinger distance (in [0, 1]) above which retraining is advised.
  double drift_threshold = 0.25;
  /// No recommendation before this many observations (warm-up).
  std::size_t min_observations = 200;
};

/// Sliding-window drift detector over inferred topic vectors.
/// Thread-compatible; callers ingesting from one thread need no locking.
class ConceptDriftMonitor {
 public:
  using Options = ConceptDriftOptions;

  /// `model` must outlive the monitor.
  explicit ConceptDriftMonitor(const TopicModel* model, Options options = {});

  /// Records one element's (sparse, normalized) topic vector.
  void Observe(const SparseVector& topics);

  /// Hellinger distance between the model's topic prior and the empirical
  /// topic usage of the tracked window; 0 while warming up.
  double CurrentDrift() const;

  /// True when drift exceeds the threshold after warm-up.
  bool RetrainRecommended() const;

  std::size_t num_observations() const { return total_observed_; }
  const Options& options() const { return options_; }

 private:
  const TopicModel* model_;
  Options options_;
  /// Per-topic accumulated mass of the ring buffer.
  std::vector<double> mass_;
  /// Ring buffer of observed sparse vectors (to subtract on eviction).
  std::deque<SparseVector> recent_;
  std::size_t total_observed_ = 0;
};

}  // namespace ksir

#endif  // KSIR_TOPIC_DRIFT_H_
