// Shared runtime layer: the fixed-size thread pool used by the whole
// system — the sharded service advances shards and fans queries out on it,
// and the core engine's maintainer executes its staged bucket work on it.
// It lives below both so the engine can parallelize without depending on
// the service. Deliberately minimal: tasks are std::function<void()>,
// results travel through captured state, and WaitIdle() gives the caller a
// barrier. The ksir library itself is exception-free (errors travel as
// Status through captured state), but the pool must not be: a task that
// throws — user callbacks, std::bad_alloc — would otherwise leave the
// in-flight counters permanently elevated and deadlock every waiter. The
// first exception of a batch is captured and rethrown to the waiter; the
// counters are decremented on every exit path.
//
// Scheduling is SHARD-AFFINE: every worker owns a task deque, Submit
// round-robins across them, SubmitTo targets one worker, and an idle
// worker steals from its neighbors (oldest task first) so affinity is a
// preference, never a stall. The point is cache locality for the
// maintainer's topic-sharded stages: ParallelRunAffine places participant
// p's helper on worker p - 1 every bucket, so the same topic shard keeps
// landing on the same OS thread (and, with PoolOptions::pin_threads, the
// same CPU) while work conservation is preserved by the steal path.
#ifndef KSIR_RUNTIME_WORKER_POOL_H_
#define KSIR_RUNTIME_WORKER_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "telemetry/telemetry.h"

namespace ksir {

/// Construction-time pool knobs (see MakeWorkerPool).
struct PoolOptions {
  /// Pin worker i to the i-th CPU of the process's allowed set
  /// (pthread_setaffinity_np over sched_getaffinity). Best-effort: a pin
  /// the kernel refuses (cgroup cpuset shrank, CPU went offline) or a
  /// non-Linux platform counts into `ksir_pool_pin_failures_total` and the
  /// worker runs unpinned — affinity is a performance hint, never a
  /// correctness dependency.
  bool pin_threads = false;
};

/// Shared worker pool. Thread-safe; Submit may be called from any thread,
/// including from inside a task (tasks must not WaitIdle, though — that
/// would deadlock the barrier they are part of; use ParallelRun /
/// ParallelRunAffine for nested fan-out, their caller participation never
/// blocks pool progress).
class WorkerPool {
 public:
  /// Spawns `num_threads` workers (>= 1; 0 is clamped to 1). Prefer
  /// MakeWorkerPool — the one factory every deployment seam constructs
  /// pools through. `telemetry` (optional, must outlive the pool) receives
  /// the per-worker queue-depth gauges, task/steal/pin counters and the
  /// task-latency histogram; null gives the pool a private kOff Telemetry.
  explicit WorkerPool(std::size_t num_threads, Telemetry* telemetry = nullptr,
                      PoolOptions options = {});

  /// Drains the queues, then joins all workers. An exception captured
  /// after the last WaitIdle is discarded.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Enqueues `task` for execution on some worker (round-robin home queue;
  /// any idle worker may steal it). A throwing task does not kill the
  /// worker: the first exception since the last WaitIdle is captured and
  /// rethrown there.
  void Submit(std::function<void()> task);

  /// Enqueues `task` with `worker` (mod num_threads) as its home queue:
  /// the affinity seam ParallelRunAffine schedules through. Still
  /// work-conserving — an idle worker steals it if the home worker is
  /// busy.
  void SubmitTo(std::size_t worker, std::function<void()> task);

  /// Blocks until every submitted task has finished executing, then
  /// rethrows the first exception any of them raised (clearing it).
  void WaitIdle();

  std::size_t num_threads() const { return threads_.size(); }

  /// Workers successfully pinned to a CPU (0 unless
  /// PoolOptions::pin_threads; may be < num_threads on pin failure).
  std::size_t pinned_threads() const { return pinned_threads_; }

 private:
  void WorkerLoop(std::size_t worker);
  void PinThreads();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  /// One deque per worker. Guarded by the one pool mutex: pool tasks are
  /// coarse (a maintenance stage, a shard advance), so queue ops are not
  /// the contention point and per-queue locks would buy nothing — the
  /// per-worker split exists for AFFINITY (a worker pops its own queue
  /// first), not for lock sharding.
  std::vector<std::deque<std::function<void()>>> queues_;
  std::size_t pending_ = 0;    // tasks queued across all deques
  std::size_t in_flight_ = 0;  // tasks currently executing
  std::size_t next_worker_ = 0;  // round-robin cursor for plain Submit
  /// First exception thrown by a directly submitted task (TaskGroup tasks
  /// capture into their group instead); rethrown by WaitIdle.
  std::exception_ptr first_exception_;
  bool shutdown_ = false;
  std::size_t pinned_threads_ = 0;
  /// Fallback Telemetry (kOff) owned when none was passed; keeps the
  /// metric pointers below always valid.
  std::unique_ptr<Telemetry> owned_telemetry_;
  Telemetry* telemetry_;
  /// Per-worker instantaneous queue depth (set under mutex_ at every
  /// push/pop, so plain last-value gauges are exact) plus the aggregate
  /// depth existing dashboards watch. The registry is name-keyed (no
  /// labels), so the per-worker series are suffixed _worker_<i>.
  Gauge* queue_depth_gauge_;
  std::vector<Gauge*> worker_depth_gauges_;
  Counter* tasks_counter_;
  /// Tasks a worker popped from another worker's queue (starvation /
  /// imbalance visibility for the affine scheduling).
  Counter* steals_counter_;
  /// Pin attempts the platform or kernel refused.
  Counter* pin_failures_counter_;
  Histogram* task_hist_;
  std::vector<std::thread> threads_;
};

/// The one pool-construction seam (service, engine-owned maintenance
/// pools, benches, tests): resolves `requested` threads — 0 falls back to
/// `fallback` — and builds the pool. Keeping every call site on this
/// factory is what makes "no stray thread spawns" checkable.
std::unique_ptr<WorkerPool> MakeWorkerPool(std::size_t requested,
                                           std::size_t fallback = 1,
                                           Telemetry* telemetry = nullptr,
                                           PoolOptions options = {});

/// Completion barrier for one batch of tasks on a shared pool. Unlike
/// WorkerPool::WaitIdle, Wait() only blocks on tasks submitted through THIS
/// group, so concurrent queries and ingestion can share one pool without
/// waiting on each other's work. Exceptions thrown by group tasks belong to
/// the group: Wait() rethrows the first one, the pool never sees them.
class TaskGroup {
 public:
  /// `pool` must outlive the group.
  explicit TaskGroup(WorkerPool* pool) : pool_(pool) {}

  /// Drains the group without rethrowing (an exception never surfaced by a
  /// Wait() call is discarded; destructors must not throw).
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueues `task` on the pool and tracks it in this group. The pending
  /// count is decremented whether the task returns or throws.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted through this group has finished,
  /// then rethrows the first exception any of them raised (clearing it).
  void Wait();

 private:
  /// The barrier without the rethrow (shared by Wait and the destructor).
  void WaitDrained();

  WorkerPool* pool_;
  std::mutex mutex_;
  std::condition_variable done_;
  std::size_t pending_ = 0;
  std::exception_ptr first_exception_;
};

/// Runs `fn(i)` for every i in [0, n) with CALLER PARTICIPATION: up to
/// n - 1 helper tasks are enqueued on the pool, every participant claims
/// indices from a shared cursor, and the caller keeps claiming and running
/// work itself until none is left — so the call makes progress even when
/// every pool worker is busy (or when the caller IS a pool worker, as with
/// per-shard maintenance fanning out on the service's shared pool).
/// Helpers never block: one that finds the cursor exhausted simply
/// returns. That is what makes nested fan-out deadlock-free where a
/// TaskGroup::Wait inside a pool task is not. Each index is executed by
/// exactly one participant; the call returns after every claimed index has
/// finished, rethrowing the first exception any fn raised.
void ParallelRun(WorkerPool* pool, std::size_t n,
                 std::function<void(std::size_t)> fn);

/// ParallelRun with SHARD AFFINITY: runs `fn(p, u)` for every unit
/// u in [0, units), executed by exactly one of `participants` participants
/// (p = the executing participant's stable index — safe to key per-
/// participant scratch on). Participant p claims its strided share
/// (u = p, p + P, ...) first, then sweeps the whole range stealing
/// whatever is still unclaimed; its helper task is placed on worker p - 1
/// through SubmitTo, so the SAME unit residues keep landing on the SAME
/// worker across calls — the cache-affinity contract of the maintainer's
/// topic-sharded stages. The caller is participant 0 and, like
/// ParallelRun, can complete every unit itself: it never waits on a task
/// that has not started, which keeps nested fan-out on a busy shared pool
/// deadlock-free. Rethrows the first exception any fn raised.
void ParallelRunAffine(WorkerPool* pool, std::size_t participants,
                       std::size_t units,
                       std::function<void(std::size_t, std::size_t)> fn);

}  // namespace ksir

#endif  // KSIR_RUNTIME_WORKER_POOL_H_
