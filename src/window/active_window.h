// Sliding-window store of active elements (paper Section 3.1).
//
// Given window length T and current time t:
//   W_t = { e : e.ts in (t - T, t] }                      (integer timestamps,
//                                                          i.e. [t-T+1, t])
//   A_t = W_t  ∪  { e' : e in W_t and e' in e.ref }
//
// An element becomes INACTIVE when it is outside W_t AND no in-window
// element refers to it anymore ("never referred to by any element after time
// t - T + 1", Algorithm 1 lines 12-13). A_t is defined declaratively over
// the whole stream, so a *future* element may reference a currently inactive
// one and pull it back into A_t (in Table 1, e2 is unreferenced and outside
// the window at t = 6 yet belongs to A_8 via e7/e8). To honor that, inactive
// elements are retained in an archive for `archive_retention` time units and
// are resurrected when referenced again; references to elements older than
// the retention horizon are counted as dangling and ignored (DESIGN.md §3).
//
// For each active element e the store keeps I_t(e): the in-window elements
// referring to e, which is exactly the influenced set of the influence score
// (Eq. 4). Advance() reports every window change as a Touched record that
// already carries everything downstream maintenance needs — the element
// pointer, the final t_e, and the topic vectors of the referrers gained and
// lost this bucket — so the index maintainer never re-probes the window's
// hash table per element or per edge. All carried pointers are pool-stable
// and valid until the next Advance() call.
#ifndef KSIR_WINDOW_ACTIVE_WINDOW_H_
#define KSIR_WINDOW_ACTIVE_WINDOW_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/flat_hash_map.h"
#include "common/small_vector.h"
#include "common/status.h"
#include "common/types.h"
#include "stream/element.h"

namespace ksir {

/// One in-window referrer of an element: (referrer id, referral time).
struct Referrer {
  ElementId id;
  Timestamp ts;

  bool operator==(const Referrer&) const = default;
};

/// Referrer set I_t(e), in referral-time order. Inline storage covers the
/// typical in-degree; hubs spill to the heap.
using ReferrerList = SmallVector<Referrer, 4>;

/// Mutable sliding-window element store. Thread-compatible; the engine
/// serializes Advance() against queries with a shared_mutex.
class ActiveWindow {
 public:
  /// One element changed by an Advance() call, with the state downstream
  /// maintenance needs carried along (no window re-probing):
  ///  - `element` points at the pool-stable stored element,
  ///  - `te` is LastReferredAt(id) at the end of the call,
  ///  - the topic-vector spans list the referrers gained / lost this call
  ///    (referral-time order; empty for inserted / resurrected elements,
  ///    whose referrer sets are re-read wholesale at re-scoring).
  /// Pointers stay valid until the next Advance().
  struct Touched {
    ElementId id;
    const SocialElement* element = nullptr;
    Timestamp te = 0;
    const SparseVector* const* gained_topics = nullptr;
    std::uint32_t num_gained = 0;
    const SparseVector* const* lost_topics = nullptr;
    std::uint32_t num_lost = 0;
    /// Opaque per-element slot owned by the consumer (the maintainer parks
    /// its score-cache record here at insertion and reads it back on every
    /// later touch — the last per-element hash probe carried away). The
    /// window never interprets it; it lives as long as the entry.
    void** user_slot = nullptr;
  };

  /// Changes produced by one Advance() call, consumed by the ranked-list
  /// maintainer (Algorithm 1). The lists are disjoint: an id appears in at
  /// most one of them per call.
  struct UpdateResult {
    /// Newly inserted elements (in arrival order).
    std::vector<Touched> inserted;
    /// Archived elements pulled back into A_t by a new reference. Index
    /// maintenance treats them like insertions.
    std::vector<Touched> resurrected;
    /// Active elements that gained at least one referrer (they may have
    /// lost referrers too; both spans are populated).
    std::vector<Touched> gained_referrer;
    /// Active elements that lost at least one referrer to expiry but remain
    /// active (their influence score shrank) and gained none.
    std::vector<Touched> lost_referrer;
    /// Elements that left A_t (deactivated; removed from the ranked
    /// lists). Edge spans are empty; element/te/user_slot are carried
    /// (the entries stay alive through this call). The slot target is
    /// consumer-owned and the consumer may free it while handling the
    /// expiry — the maintainer's topic-sharded erase copies its hints out
    /// of the slot's record BEFORE releasing it, and nothing may read the
    /// slot after the consumer's own release.
    std::vector<Touched> expired;
    /// References whose target was neither active nor archived.
    std::int64_t dangling_refs = 0;
  };

  /// `window_length` is T (> 0). `archive_retention` is how long inactive
  /// elements stay resurrectable; <= 0 means "same as T".
  explicit ActiveWindow(Timestamp window_length,
                        Timestamp archive_retention = 0);

  /// Entries are pool-allocated; live ones are destroyed here.
  ~ActiveWindow();

  ActiveWindow(const ActiveWindow&) = delete;
  ActiveWindow& operator=(const ActiveWindow&) = delete;

  /// Advances time to `now` and ingests `bucket` (elements with
  /// ts in (previous now, now], sorted by ts, unique ids). Insertions are
  /// processed before expiry, so an element referred to by this bucket
  /// survives even if its own timestamp just left the window.
  StatusOr<UpdateResult> Advance(Timestamp now,
                                 std::vector<SocialElement> bucket);

  /// Active-element lookup; nullptr when the id is inactive or unknown.
  const SocialElement* Find(ElementId id) const;

  /// True when the element belongs to A_t.
  bool IsActive(ElementId id) const;

  /// True when the element is active AND inside W_t (not merely referenced).
  bool IsInWindow(ElementId id) const;

  /// True when the element is retained in the archive (inactive but
  /// resurrectable). Exposed for tests.
  bool IsArchived(ElementId id) const;

  /// I_t(e): in-window referrers of `id` in referral-time order.
  /// Empty for unknown or inactive ids.
  const ReferrerList& ReferrersOf(ElementId id) const;

  /// Last time `id` was referred to, or its own ts when never referred
  /// (the t_e of the paper's ranked-list tuples). `id` must be active.
  Timestamp LastReferredAt(ElementId id) const;

  /// Invokes `fn` for every active element (A_t), unspecified order.
  void ForEachActive(
      const std::function<void(const SocialElement&)>& fn) const;

  /// Snapshot of active element ids, unspecified order.
  std::vector<ElementId> ActiveIds() const;

  /// n_t = |A_t|.
  std::size_t num_active() const { return num_active_; }

  /// Number of elements currently in W_t.
  std::size_t num_in_window() const { return window_order_.size(); }

  Timestamp now() const { return now_; }
  Timestamp window_length() const { return window_length_; }
  Timestamp archive_retention() const { return archive_retention_; }

 private:
  struct Entry {
    SocialElement element;
    ReferrerList referrers;   // in-window, sorted by ts
    Timestamp last_ref_time;  // max referral ts ever seen (or own ts)
    bool active = true;
    /// Time of the most recent deactivation (archive GC key).
    Timestamp deactivated_at = kMinTimestamp;
    /// Advance-epoch stamps deduplicating the gained/lost report lists
    /// without per-edge hash-set inserts (the entry is already in hand when
    /// an edge is registered).
    std::uint64_t gained_stamp = 0;
    std::uint64_t lost_stamp = 0;
    /// Per-bucket influence-edge stash: topic vectors of the referrers this
    /// element gained / lost in the current Advance (referral-time order).
    /// Lazily cleared via `stash_stamp`, and reported to the maintainer as
    /// the Touched spans — this is how edge deltas reach the score cache
    /// without a window probe per edge.
    SmallVector<const SparseVector*, 4> gained_stash;
    SmallVector<const SparseVector*, 4> lost_stash;
    std::uint64_t stash_stamp = 0;
    /// Entries of this element's non-dangling reference targets, resolved
    /// once at insertion. A live referral record keeps its target active
    /// (hence alive) until this element leaves the window — exactly when
    /// these pointers are consumed to drop the records, so the expiry
    /// phase performs zero target re-probes.
    SmallVector<Entry*, 4> ref_targets;
    /// Consumer-owned slot surfaced through Touched::user_slot.
    void* user_data = nullptr;
  };

  /// Clears the entry's edge stash on its first touch this epoch.
  void TouchStash(Entry* entry);

  /// Builds one report record from an entry.
  Touched MakeTouched(ElementId id, Entry* entry, bool with_edges) const;

  /// Marks the entry inactive if it no longer satisfies the A_t predicate.
  void MaybeDeactivate(ElementId id, Entry* entry, UpdateResult* result);

  Timestamp window_length_;
  Timestamp archive_retention_;
  Timestamp now_ = 0;
  /// Monotone Advance() counter backing the Entry dedup stamps.
  std::uint64_t advance_epoch_ = 0;
  /// Entries live in a free-list pool: an insert after a GC reuses a warm
  /// slot instead of hitting the allocator, the id table rehashes 8-byte
  /// pointers instead of whole entries, and entry addresses are stable
  /// across insertions (references survive rehash) — which is what makes
  /// the Touched pointers safe to hand out until the next Advance().
  ObjectPool<Entry> pool_;
  FlatHashMap<ElementId, Entry*> entries_;
  std::size_t num_active_ = 0;
  /// Ids of elements in W_t, ordered by ts (front = oldest).
  std::deque<ElementId> window_order_;
  /// Inactive elements by deactivation time (front = oldest) for GC.
  std::deque<std::pair<ElementId, Timestamp>> archive_queue_;

  /// ---- per-Advance scratch, cleared at the top of every call ----
  /// Retained across buckets so the steady-state hot path allocates
  /// nothing: the vectors keep their capacity, the sets their slot arrays.
  std::vector<std::pair<ElementId, Entry*>> inserted_scratch_;
  std::vector<std::pair<ElementId, Entry*>> gained_scratch_;
  std::vector<std::pair<ElementId, Entry*>> lost_scratch_;
  std::vector<std::pair<ElementId, Entry*>> leavers_;
  FlatHashSet<ElementId> resurrected_scratch_;
  FlatHashSet<ElementId> inserted_set_;
  FlatHashSet<ElementId> expired_set_;
  FlatHashSet<ElementId> drop_from_expired_;

  static const ReferrerList kNoReferrers;
};

}  // namespace ksir

#endif  // KSIR_WINDOW_ACTIVE_WINDOW_H_
