# Empty compiler generated dependencies file for fig09_time_vs_k.
# This may be replaced when dependencies are built.
