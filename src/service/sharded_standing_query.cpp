#include "service/sharded_standing_query.h"

#include <algorithm>
#include <utility>

namespace ksir {

ShardedStandingQueryManager::ShardedStandingQueryManager(Evaluator evaluator,
                                                         SubscriptionMode mode,
                                                         Telemetry* telemetry)
    : subscriptions_(std::move(evaluator), mode, telemetry) {}

Status ShardedStandingQueryManager::AfterAdvance(
    const std::vector<AdvanceSummary>& shard_summaries, std::uint64_t epoch) {
  last_epoch_ = epoch;
  merged_.topics.clear();
  merged_.epoch = epoch;
  for (const AdvanceSummary& summary : shard_summaries) {
    merged_.topics.insert(merged_.topics.end(), summary.topics.begin(),
                          summary.topics.end());
  }
  std::sort(merged_.topics.begin(), merged_.topics.end(),
            [](const AdvanceSummary::TopicTouch& a,
               const AdvanceSummary::TopicTouch& b) {
              return a.topic < b.topic;
            });
  // Max-merge duplicates in place (each shard's list is already deduped,
  // so a topic appears at most num_shards times).
  std::size_t out = 0;
  for (std::size_t i = 0; i < merged_.topics.size(); ++i) {
    if (out > 0 && merged_.topics[out - 1].topic == merged_.topics[i].topic) {
      merged_.topics[out - 1].max_movement =
          std::max(merged_.topics[out - 1].max_movement,
                   merged_.topics[i].max_movement);
    } else {
      merged_.topics[out++] = merged_.topics[i];
    }
  }
  merged_.topics.resize(out);
  return subscriptions_.EvaluateAffected(merged_);
}

}  // namespace ksir
