// Shared runtime layer: the fixed-size thread pool used by the whole
// system — the sharded service advances shards and fans queries out on it,
// and the core engine's maintainer executes its staged bucket work on it.
// It lives below both so the engine can parallelize without depending on
// the service. Deliberately minimal: tasks are std::function<void()>,
// results travel through captured state, and WaitIdle() gives the caller a
// barrier. The ksir library itself is exception-free (errors travel as
// Status through captured state), but the pool must not be: a task that
// throws — user callbacks, std::bad_alloc — would otherwise leave the
// in-flight counters permanently elevated and deadlock every waiter. The
// first exception of a batch is captured and rethrown to the waiter; the
// counters are decremented on every exit path.
#ifndef KSIR_RUNTIME_WORKER_POOL_H_
#define KSIR_RUNTIME_WORKER_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "telemetry/telemetry.h"

namespace ksir {

/// Shared worker pool. Thread-safe; Submit may be called from any thread,
/// including from inside a task (tasks must not WaitIdle, though — that
/// would deadlock the barrier they are part of; use ParallelRun for nested
/// fan-out, its caller participation never blocks pool progress).
class WorkerPool {
 public:
  /// Spawns `num_threads` workers (>= 1; 0 is clamped to 1). Prefer
  /// MakeWorkerPool — the one factory every deployment seam constructs
  /// pools through. `telemetry` (optional, must outlive the pool) receives
  /// the queue-depth gauge, task counter and task-latency histogram; null
  /// gives the pool a private kOff Telemetry.
  explicit WorkerPool(std::size_t num_threads, Telemetry* telemetry = nullptr);

  /// Drains the queue, then joins all workers. An exception captured after
  /// the last WaitIdle is discarded.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Enqueues `task` for execution on some worker. A throwing task does not
  /// kill the worker: the first exception since the last WaitIdle is
  /// captured and rethrown there.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing, then
  /// rethrows the first exception any of them raised (clearing it).
  void WaitIdle();

  std::size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  // tasks currently executing
  /// First exception thrown by a directly submitted task (TaskGroup tasks
  /// capture into their group instead); rethrown by WaitIdle.
  std::exception_ptr first_exception_;
  bool shutdown_ = false;
  /// Fallback Telemetry (kOff) owned when none was passed; keeps the
  /// metric pointers below always valid.
  std::unique_ptr<Telemetry> owned_telemetry_;
  Telemetry* telemetry_;
  /// Instantaneous queue depth (set under mutex_ at every push/pop, so a
  /// plain last-value gauge is exact).
  Gauge* queue_depth_gauge_;
  Counter* tasks_counter_;
  Histogram* task_hist_;
  std::vector<std::thread> threads_;
};

/// The one pool-construction seam (service, engine-owned maintenance
/// pools, benches, tests): resolves `requested` threads — 0 falls back to
/// `fallback` — and builds the pool. Keeping every call site on this
/// factory is what makes "no stray thread spawns" checkable.
std::unique_ptr<WorkerPool> MakeWorkerPool(std::size_t requested,
                                           std::size_t fallback = 1,
                                           Telemetry* telemetry = nullptr);

/// Completion barrier for one batch of tasks on a shared pool. Unlike
/// WorkerPool::WaitIdle, Wait() only blocks on tasks submitted through THIS
/// group, so concurrent queries and ingestion can share one pool without
/// waiting on each other's work. Exceptions thrown by group tasks belong to
/// the group: Wait() rethrows the first one, the pool never sees them.
class TaskGroup {
 public:
  /// `pool` must outlive the group.
  explicit TaskGroup(WorkerPool* pool) : pool_(pool) {}

  /// Drains the group without rethrowing (an exception never surfaced by a
  /// Wait() call is discarded; destructors must not throw).
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueues `task` on the pool and tracks it in this group. The pending
  /// count is decremented whether the task returns or throws.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted through this group has finished,
  /// then rethrows the first exception any of them raised (clearing it).
  void Wait();

 private:
  /// The barrier without the rethrow (shared by Wait and the destructor).
  void WaitDrained();

  WorkerPool* pool_;
  std::mutex mutex_;
  std::condition_variable done_;
  std::size_t pending_ = 0;
  std::exception_ptr first_exception_;
};

/// Runs `fn(i)` for every i in [0, n) with CALLER PARTICIPATION: up to
/// n - 1 helper tasks are enqueued on the pool, every participant claims
/// indices from a shared cursor, and the caller keeps claiming and running
/// work itself until none is left — so the call makes progress even when
/// every pool worker is busy (or when the caller IS a pool worker, as with
/// per-shard maintenance fanning out on the service's shared pool).
/// Helpers never block: one that finds the cursor exhausted simply
/// returns. That is what makes nested fan-out deadlock-free where a
/// TaskGroup::Wait inside a pool task is not. Each index is executed by
/// exactly one participant; the call returns after every claimed index has
/// finished, rethrowing the first exception any fn raised.
void ParallelRun(WorkerPool* pool, std::size_t n,
                 std::function<void(std::size_t)> fn);

}  // namespace ksir

#endif  // KSIR_RUNTIME_WORKER_POOL_H_
