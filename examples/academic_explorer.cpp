// Academic-stream explorer: query-by-document over a citation stream.
//
// Generates an AMinerSim stream (papers citing papers), then uses one
// element as the query document ("find the representative recent work
// related to this paper") — the query-by-document paradigm of Section 3.2 —
// and compares every implemented algorithm on the same query: result
// quality, latency, and pruning power.
//
//   $ ./academic_explorer
#include <cstdio>

#include "core/engine.h"
#include "stream/generator.h"

namespace {

using namespace ksir;  // NOLINT(build/namespaces) - example brevity

}  // namespace

int main() {
  std::printf("Academic explorer: query-by-document over a citation stream\n");
  std::printf("============================================================\n");

  StreamProfile profile = AMinerSimProfile();
  profile.num_elements = 10000;
  auto generated = GenerateStream(profile);
  KSIR_CHECK(generated.ok());
  const GeneratedStream& stream = *generated;

  EngineConfig config;
  config.scoring.lambda = 0.5;
  config.scoring.eta = 20.0;  // paper's AMiner setting
  config.window_length = 24 * 3600;
  config.bucket_length = 15 * 60;
  KsirEngine engine(config, &stream.model);
  KSIR_CHECK(engine.Append(stream.elements).ok());

  // Query-by-document: take a recent, topically-focused element as "the
  // paper I am reading" and use its topic vector as the query.
  const SocialElement* seed = nullptr;
  for (auto it = stream.elements.rbegin(); it != stream.elements.rend();
       ++it) {
    if (engine.window().IsActive(it->id) && it->topics.nnz() <= 2) {
      seed = &*it;
      break;
    }
  }
  KSIR_CHECK(seed != nullptr);
  std::printf("\nSeed document e%lld (topic support:",
              static_cast<long long>(seed->id));
  for (const auto& [topic, prob] : seed->topics.entries()) {
    std::printf(" theta_%d:%.2f", topic, prob);
  }
  std::printf(")\n");

  KsirQuery query;
  query.k = 10;
  query.x = seed->topics;  // query-by-document: x = p(e_seed)
  query.epsilon = 0.1;

  std::printf("\n%-22s %10s %12s %12s %14s\n", "algorithm", "f(S,x)",
              "time (ms)", "evaluated", "gain evals");
  std::printf("%.*s\n", 74,
              "--------------------------------------------------------------"
              "------------");
  double celf_score = 0.0;
  for (const Algorithm algorithm :
       {Algorithm::kCelf, Algorithm::kGreedy, Algorithm::kSieveStreaming,
        Algorithm::kTopkRepresentative, Algorithm::kMtts, Algorithm::kMttd}) {
    query.algorithm = algorithm;
    const auto result = engine.Query(query);
    KSIR_CHECK(result.ok());
    if (algorithm == Algorithm::kCelf) celf_score = result->score;
    std::printf("%-22s %10.4f %12.3f %12zu %14zu\n",
                std::string(AlgorithmName(algorithm)).c_str(), result->score,
                result->stats.elapsed_ms, result->stats.num_evaluated,
                result->stats.num_gain_evaluations);
  }

  query.algorithm = Algorithm::kMttd;
  const auto mttd = engine.Query(query);
  KSIR_CHECK(mttd.ok());
  std::printf(
      "\nMTTD reached %.1f%% of CELF quality while evaluating %zu of %zu "
      "active elements (%.2f%%).\n",
      100.0 * mttd->score / celf_score, mttd->stats.num_evaluated,
      engine.window().num_active(),
      100.0 * static_cast<double>(mttd->stats.num_evaluated) /
          static_cast<double>(engine.window().num_active()));

  std::printf("\nSelected set with citation counts inside the window:\n");
  for (ElementId id : mttd->element_ids) {
    const SocialElement* e = engine.window().Find(id);
    KSIR_CHECK(e != nullptr);
    std::printf("  e%-6lld cited-by %2zu  outgoing refs %2zu  topics %zu\n",
                static_cast<long long>(id),
                engine.window().ReferrersOf(id).size(), e->refs.size(),
                e->topics.nnz());
  }
  return 0;
}
