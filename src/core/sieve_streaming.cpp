#include "core/sieve_streaming.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/timer.h"
#include "core/candidate_state.h"

namespace ksir {

QueryResult RunSieveStreaming(const ScoringContext& ctx,
                              const ActiveWindow& window,
                              const KsirQuery& query) {
  KSIR_CHECK(query.k >= 1);
  KSIR_CHECK(query.epsilon > 0.0 && query.epsilon < 1.0);
  WallTimer timer;
  QueryResult result;

  const double eps = query.epsilon;
  const double k = static_cast<double>(query.k);
  const double log1e = std::log1p(eps);

  std::vector<ElementId> ids = window.ActiveIds();
  std::sort(ids.begin(), ids.end());

  std::map<int, std::unique_ptr<CandidateState>> candidates;
  double m = 0.0;  // max singleton value seen so far

  for (ElementId id : ids) {
    const SocialElement* e = window.Find(id);
    KSIR_CHECK(e != nullptr);
    const double score = ctx.ElementScore(*e, query.x);
    ++result.stats.num_evaluated;
    if (score > m) {
      m = score;
      const int j_lo = static_cast<int>(std::ceil(std::log(m) / log1e - 1e-9));
      const int j_hi =
          static_cast<int>(std::floor(std::log(2.0 * k * m) / log1e + 1e-9));
      std::erase_if(candidates, [&](const auto& kv) {
        return kv.first < j_lo || kv.first > j_hi;
      });
      for (int j = j_lo; j <= j_hi; ++j) {
        if (!candidates.contains(j)) {
          candidates.emplace(j,
                             std::make_unique<CandidateState>(&ctx, &query.x));
        }
      }
    }
    for (auto& [j, candidate] : candidates) {
      if (candidate->size() >= static_cast<std::size_t>(query.k)) continue;
      const double phi = std::pow(1.0 + eps, j);
      // Original sieve rule: add when the gain reaches the "fair share" of
      // the remaining budget toward phi/2.
      const double needed = (phi / 2.0 - candidate->score()) /
                            (k - static_cast<double>(candidate->size()));
      // The singleton score upper-bounds the gain, so elements below the
      // required share are skipped without a gain evaluation.
      if (needed > 0.0 && score < needed) continue;
      ++result.stats.num_gain_evaluations;
      if (candidate->MarginalGain(*e) >= needed) {
        candidate->Add(*e);
      }
    }
  }

  const CandidateState* best = nullptr;
  for (const auto& [j, candidate] : candidates) {
    if (best == nullptr || candidate->score() > best->score()) {
      best = candidate.get();
    }
  }
  if (best != nullptr) {
    result.element_ids = best->members();
    result.score = best->score();
  }
  result.stats.num_candidates_or_rounds = candidates.size();
  result.stats.elapsed_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace ksir
