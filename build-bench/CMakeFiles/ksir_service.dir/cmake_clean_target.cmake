file(REMOVE_RECURSE
  "libksir_service.a"
)
