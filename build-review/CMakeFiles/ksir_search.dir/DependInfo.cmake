
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/search/div.cpp" "CMakeFiles/ksir_search.dir/src/search/div.cpp.o" "gcc" "CMakeFiles/ksir_search.dir/src/search/div.cpp.o.d"
  "/root/repo/src/search/lexrank.cpp" "CMakeFiles/ksir_search.dir/src/search/lexrank.cpp.o" "gcc" "CMakeFiles/ksir_search.dir/src/search/lexrank.cpp.o.d"
  "/root/repo/src/search/pagerank.cpp" "CMakeFiles/ksir_search.dir/src/search/pagerank.cpp.o" "gcc" "CMakeFiles/ksir_search.dir/src/search/pagerank.cpp.o.d"
  "/root/repo/src/search/rel.cpp" "CMakeFiles/ksir_search.dir/src/search/rel.cpp.o" "gcc" "CMakeFiles/ksir_search.dir/src/search/rel.cpp.o.d"
  "/root/repo/src/search/sumblr.cpp" "CMakeFiles/ksir_search.dir/src/search/sumblr.cpp.o" "gcc" "CMakeFiles/ksir_search.dir/src/search/sumblr.cpp.o.d"
  "/root/repo/src/search/tfidf.cpp" "CMakeFiles/ksir_search.dir/src/search/tfidf.cpp.o" "gcc" "CMakeFiles/ksir_search.dir/src/search/tfidf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/CMakeFiles/ksir_window.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/ksir_stream.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/ksir_topic.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/ksir_text.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/ksir_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
