// Figure 13: query time with varying window length T (6 .. 30 hours).
//
// Expected shape (paper): every method slows as T grows (more active
// elements), but MTTS/MTTD keep their large margin over the baselines.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace ksir;
  using namespace ksir::bench;
  PrintBanner("Figure 13 - query time vs window length T",
              "EDBT'19 Fig. 13(a)-(c)");

  const std::size_t num_queries = NumQueries(GetScale());
  for (int which = 0; which < 3; ++which) {
    const Dataset dataset = MakeDataset(which);
    const auto workload = MakeWorkload(dataset, num_queries);
    std::printf("\n[%s]\n", dataset.name.c_str());
    PrintHeaderRow("T (hours)", {"actives", "CELF (ms)", "Sieve (ms)",
                                 "Top-k (ms)", "MTTS (ms)", "MTTD (ms)"});
    for (const int hours : {6, 12, 18, 24, 30}) {
      const auto engine = BuildAndFeed(
          dataset, MakeConfig(dataset, static_cast<Timestamp>(hours) * 3600));
      const CellStats celf =
          RunWorkload(*engine, workload, Algorithm::kCelf, 10, 0.1);
      const CellStats sieve =
          RunWorkload(*engine, workload, Algorithm::kSieveStreaming, 10, 0.1);
      const CellStats topk = RunWorkload(
          *engine, workload, Algorithm::kTopkRepresentative, 10, 0.1);
      const CellStats mtts =
          RunWorkload(*engine, workload, Algorithm::kMtts, 10, 0.1);
      const CellStats mttd =
          RunWorkload(*engine, workload, Algorithm::kMttd, 10, 0.1);
      PrintRow(std::to_string(hours),
               {static_cast<double>(engine->window().num_active()),
                celf.mean_time_ms, sieve.mean_time_ms, topk.mean_time_ms,
                mtts.mean_time_ms, mttd.mean_time_ms});
    }
  }
  return 0;
}
