# Empty compiler generated dependencies file for ranked_list_test.
# This may be replaced when dependencies are built.
