// Unit tests for the sliding active window (paper Section 3.1 semantics).
#include <gtest/gtest.h>

#include "window/active_window.h"

namespace ksir {
namespace {

SocialElement El(ElementId id, Timestamp ts, std::vector<ElementId> refs = {}) {
  SocialElement e;
  e.id = id;
  e.ts = ts;
  e.doc = Document::FromWordIds({static_cast<WordId>(id % 7)});
  e.refs = std::move(refs);
  e.topics = SparseVector::FromEntries({{0, 1.0}});
  return e;
}

std::vector<ElementId> Ids(const std::vector<ActiveWindow::Touched>& list) {
  std::vector<ElementId> ids;
  ids.reserve(list.size());
  for (const auto& touched : list) ids.push_back(touched.id);
  return ids;
}

TEST(ActiveWindowTest, InsertAndLookup) {
  ActiveWindow window(10);
  auto update = window.Advance(2, {El(1, 1), El(2, 2)});
  ASSERT_TRUE(update.ok());
  EXPECT_EQ(Ids(update->inserted), (std::vector<ElementId>{1, 2}));
  EXPECT_EQ(window.num_active(), 2u);
  EXPECT_EQ(window.num_in_window(), 2u);
  ASSERT_NE(window.Find(1), nullptr);
  EXPECT_EQ(window.Find(1)->ts, 1);
  EXPECT_EQ(window.Find(99), nullptr);
  EXPECT_TRUE(window.IsActive(2));
  EXPECT_TRUE(window.IsInWindow(2));
}

TEST(ActiveWindowTest, RejectsBackwardTimeAndStaleElements) {
  ActiveWindow window(10);
  ASSERT_TRUE(window.Advance(5, {El(1, 3)}).ok());
  EXPECT_FALSE(window.Advance(4, {}).ok());
  EXPECT_FALSE(window.Advance(10, {El(2, 5)}).ok());   // ts <= previous now
  EXPECT_FALSE(window.Advance(10, {El(3, 11)}).ok());  // ts > bucket end
}

TEST(ActiveWindowTest, RejectsUnsortedBucketAndDuplicates) {
  ActiveWindow window(10);
  EXPECT_FALSE(window.Advance(5, {El(1, 3), El(2, 2)}).ok());
  ActiveWindow window2(10);
  EXPECT_FALSE(window2.Advance(5, {El(1, 2), El(1, 3)}).ok());
}

TEST(ActiveWindowTest, ElementsExpireAfterWindowLength) {
  // Integer-time semantics: W_t = { e : e.ts in [t-T+1, t] }.
  ActiveWindow window(4);
  ASSERT_TRUE(window.Advance(1, {El(1, 1)}).ok());
  ASSERT_TRUE(window.Advance(4, {El(2, 4)}).ok());
  EXPECT_TRUE(window.IsInWindow(1));  // 1 >= 4-4+1
  auto update = window.Advance(5, {});
  ASSERT_TRUE(update.ok());
  EXPECT_EQ(Ids(update->expired), (std::vector<ElementId>{1}));
  EXPECT_FALSE(window.IsActive(1));
  EXPECT_TRUE(window.IsActive(2));
}

TEST(ActiveWindowTest, ReferencedElementsStayActive) {
  ActiveWindow window(4);
  ASSERT_TRUE(window.Advance(1, {El(1, 1)}).ok());
  ASSERT_TRUE(window.Advance(5, {El(2, 5, {1})}).ok());
  // e1 left W_5 (ts 1 < 5-4+1=2) but is referenced by in-window e2.
  EXPECT_TRUE(window.IsActive(1));
  EXPECT_FALSE(window.IsInWindow(1));
  EXPECT_EQ(window.num_active(), 2u);
  EXPECT_EQ(window.num_in_window(), 1u);
}

TEST(ActiveWindowTest, ReferencedElementDeactivatedWhenReferrerExpires) {
  ActiveWindow window(4);
  ASSERT_TRUE(window.Advance(1, {El(1, 1)}).ok());
  ASSERT_TRUE(window.Advance(2, {El(2, 2, {1})}).ok());
  ASSERT_TRUE(window.Advance(6, {}).ok());
  // At t=6: cutoff 2; e2.ts = 2 <= 2 -> e2 left the window. e1 was only
  // referenced by e2, so both leave A_t (into the archive).
  EXPECT_FALSE(window.IsActive(2));
  EXPECT_FALSE(window.IsActive(1));
  EXPECT_EQ(window.num_active(), 0u);
  EXPECT_TRUE(window.IsArchived(1));
  EXPECT_TRUE(window.IsArchived(2));
}

TEST(ActiveWindowTest, LateReferenceResurrectsArchivedElement) {
  // Mirrors Table 1: e2 is inactive at t=6 yet e7's reference at t=7 must
  // pull it back into A_t.
  ActiveWindow window(4);
  ASSERT_TRUE(window.Advance(2, {El(2, 2)}).ok());
  ASSERT_TRUE(window.Advance(6, {}).ok());
  ASSERT_FALSE(window.IsActive(2));
  auto update = window.Advance(7, {El(7, 7, {2})});
  ASSERT_TRUE(update.ok());
  EXPECT_EQ(Ids(update->resurrected), (std::vector<ElementId>{2}));
  EXPECT_EQ(update->dangling_refs, 0);
  EXPECT_TRUE(window.IsActive(2));
  EXPECT_FALSE(window.IsInWindow(2));
  ASSERT_EQ(window.ReferrersOf(2).size(), 1u);
  EXPECT_EQ(window.ReferrersOf(2).front().id, 7);
}

TEST(ActiveWindowTest, ArchiveGarbageCollectionMakesOldRefsDangling) {
  ActiveWindow window(4, /*archive_retention=*/3);
  ASSERT_TRUE(window.Advance(1, {El(1, 1)}).ok());
  ASSERT_TRUE(window.Advance(5, {}).ok());  // e1 deactivated at t=5
  EXPECT_TRUE(window.IsArchived(1));
  ASSERT_TRUE(window.Advance(8, {}).ok());  // 5 + 3 <= 8 -> GC'd
  EXPECT_FALSE(window.IsArchived(1));
  auto update = window.Advance(9, {El(2, 9, {1})});
  ASSERT_TRUE(update.ok());
  EXPECT_EQ(update->dangling_refs, 1);
  EXPECT_TRUE(update->resurrected.empty());
}

TEST(ActiveWindowTest, ResurrectedElementCanDeactivateAgain) {
  ActiveWindow window(4, /*archive_retention=*/100);
  ASSERT_TRUE(window.Advance(1, {El(1, 1)}).ok());
  ASSERT_TRUE(window.Advance(5, {}).ok());
  ASSERT_FALSE(window.IsActive(1));
  ASSERT_TRUE(window.Advance(6, {El(2, 6, {1})}).ok());
  ASSERT_TRUE(window.IsActive(1));
  // e2 leaves the window at t=10; e1 deactivates a second time.
  auto update = window.Advance(10, {});
  ASSERT_TRUE(update.ok());
  EXPECT_EQ(Ids(update->expired), (std::vector<ElementId>{1, 2}));
  EXPECT_TRUE(window.IsArchived(1));
}

TEST(ActiveWindowTest, ReReferenceKeepsElementAlive) {
  ActiveWindow window(4);
  ASSERT_TRUE(window.Advance(1, {El(1, 1)}).ok());
  ASSERT_TRUE(window.Advance(3, {El(2, 3, {1})}).ok());
  ASSERT_TRUE(window.Advance(6, {El(3, 6, {1})}).ok());
  // e2's reference to e1 expires at t=7 (e2 leaves W), but e3 re-referenced
  // e1 at t=6, so e1 stays active until e3 leaves.
  ASSERT_TRUE(window.Advance(7, {}).ok());
  EXPECT_FALSE(window.IsActive(2));
  EXPECT_TRUE(window.IsActive(1));
  const auto& referrers = window.ReferrersOf(1);
  ASSERT_EQ(referrers.size(), 1u);
  EXPECT_EQ(referrers.front().id, 3);
  // At t=10, W = [7, 10]: e3 (ts 6) leaves, taking e1's last referral along.
  ASSERT_TRUE(window.Advance(10, {}).ok());
  EXPECT_FALSE(window.IsActive(3));
  EXPECT_FALSE(window.IsActive(1));
}

TEST(ActiveWindowTest, ReferrerSetsTrackWindow) {
  ActiveWindow window(4);
  ASSERT_TRUE(window.Advance(1, {El(1, 1)}).ok());
  ASSERT_TRUE(window.Advance(2, {El(2, 2, {1})}).ok());
  ASSERT_TRUE(window.Advance(4, {El(3, 4, {1})}).ok());
  {
    const auto& referrers = window.ReferrersOf(1);
    ASSERT_EQ(referrers.size(), 2u);
    EXPECT_EQ(referrers[0], (Referrer{2, 2}));
    EXPECT_EQ(referrers[1], (Referrer{3, 4}));
  }
  auto update = window.Advance(6, {});
  ASSERT_TRUE(update.ok());
  // e2 (ts 2) left the window; its referral of e1 no longer counts.
  const auto& referrers = window.ReferrersOf(1);
  ASSERT_EQ(referrers.size(), 1u);
  EXPECT_EQ(referrers[0].id, 3);
  EXPECT_EQ(Ids(update->lost_referrer), (std::vector<ElementId>{1}));
}

TEST(ActiveWindowTest, LastReferredAtTracksMostRecentReferral) {
  ActiveWindow window(10);
  ASSERT_TRUE(window.Advance(1, {El(1, 1)}).ok());
  EXPECT_EQ(window.LastReferredAt(1), 1);  // own ts when never referred
  ASSERT_TRUE(window.Advance(3, {El(2, 3, {1})}).ok());
  EXPECT_EQ(window.LastReferredAt(1), 3);
  ASSERT_TRUE(window.Advance(7, {El(3, 7, {1})}).ok());
  EXPECT_EQ(window.LastReferredAt(1), 7);
}

TEST(ActiveWindowTest, DuplicateReferenceTargetsCollapse) {
  // Eq. 4 is defined over the *set* e.ref: a malformed element listing the
  // same target twice must not double-count the influence edge.
  ActiveWindow window(10);
  ASSERT_TRUE(window.Advance(1, {El(1, 1)}).ok());
  ASSERT_TRUE(window.Advance(2, {El(2, 2, {1, 1, 1})}).ok());
  EXPECT_EQ(window.ReferrersOf(1).size(), 1u);
  const SocialElement* e2 = window.Find(2);
  ASSERT_NE(e2, nullptr);
  EXPECT_EQ(e2->refs, (std::vector<ElementId>{1}));
}

TEST(ActiveWindowTest, SelfReferenceIsDropped) {
  ActiveWindow window(10);
  auto update = window.Advance(1, {El(1, 1, {1})});
  ASSERT_TRUE(update.ok());
  EXPECT_EQ(update->dangling_refs, 0);
  EXPECT_TRUE(window.ReferrersOf(1).empty());
  EXPECT_TRUE(window.Find(1)->refs.empty());
}

TEST(ActiveWindowTest, DanglingReferencesCounted) {
  ActiveWindow window(4);
  auto update = window.Advance(1, {El(1, 1, {42})});
  ASSERT_TRUE(update.ok());
  EXPECT_EQ(update->dangling_refs, 1);
  EXPECT_TRUE(window.IsActive(1));
}

TEST(ActiveWindowTest, SameBucketReferenceResolves) {
  ActiveWindow window(4);
  auto update = window.Advance(3, {El(1, 1), El(2, 2, {1}), El(3, 3, {1, 2})});
  ASSERT_TRUE(update.ok());
  EXPECT_EQ(update->dangling_refs, 0);
  EXPECT_EQ(window.ReferrersOf(1).size(), 2u);
  EXPECT_EQ(window.ReferrersOf(2).size(), 1u);
  // Inserted elements are reported only as insertions.
  EXPECT_TRUE(update->gained_referrer.empty());
}

TEST(ActiveWindowTest, InsertionProcessedBeforeExpiry) {
  ActiveWindow window(4);
  ASSERT_TRUE(window.Advance(2, {El(1, 2)}).ok());
  // At t=6, e1 (ts 2 <= 2) leaves the window, but the same bucket carries a
  // reference to it, so it must survive as a referenced element.
  auto update = window.Advance(6, {El(2, 6, {1})});
  ASSERT_TRUE(update.ok());
  EXPECT_TRUE(update->expired.empty());
  EXPECT_TRUE(window.IsActive(1));
  EXPECT_FALSE(window.IsInWindow(1));
}

TEST(ActiveWindowTest, GainedReferrerReported) {
  ActiveWindow window(10);
  ASSERT_TRUE(window.Advance(1, {El(1, 1)}).ok());
  auto update = window.Advance(2, {El(2, 2, {1})});
  ASSERT_TRUE(update.ok());
  EXPECT_EQ(Ids(update->gained_referrer), (std::vector<ElementId>{1}));
}

TEST(ActiveWindowTest, ExpiredChainReportsAllDiscards) {
  ActiveWindow window(3);
  ASSERT_TRUE(window.Advance(1, {El(1, 1)}).ok());
  ASSERT_TRUE(window.Advance(2, {El(2, 2, {1})}).ok());
  ASSERT_TRUE(window.Advance(3, {El(3, 3, {2})}).ok());
  // t=6: cutoff 3; all of e1, e2, e3 exit the window; the whole chain dies.
  auto update = window.Advance(6, {});
  ASSERT_TRUE(update.ok());
  EXPECT_EQ(Ids(update->expired), (std::vector<ElementId>{1, 2, 3}));
  EXPECT_EQ(window.num_active(), 0u);
}

TEST(ActiveWindowTest, ForEachActiveAndActiveIds) {
  ActiveWindow window(10);
  ASSERT_TRUE(window.Advance(3, {El(1, 1), El(2, 2), El(3, 3)}).ok());
  std::size_t count = 0;
  window.ForEachActive([&](const SocialElement& e) {
    ++count;
    EXPECT_TRUE(e.id >= 1 && e.id <= 3);
  });
  EXPECT_EQ(count, 3u);
  auto ids = window.ActiveIds();
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<ElementId>{1, 2, 3}));
}

TEST(ActiveWindowTest, SameCallInsertAndExpireReportedInNeitherList) {
  // A far time jump can expire a bucket's own elements (ts <= now - T at
  // the bucket's end). Such an element was never visible between Advance
  // calls, so it must be reported in NEITHER inserted nor expired — the
  // report lists stay disjoint for the index maintainer.
  ActiveWindow window(4);
  ASSERT_TRUE(window.Advance(1, {El(1, 1)}).ok());
  auto update = window.Advance(100, {El(2, 95)});
  ASSERT_TRUE(update.ok());
  EXPECT_TRUE(update->inserted.empty());
  EXPECT_EQ(Ids(update->expired), std::vector<ElementId>{1});  // e1 still expires
  EXPECT_FALSE(window.IsActive(2));
  EXPECT_TRUE(window.IsArchived(2));
}

TEST(ActiveWindowTest, EmptyBucketAdvancesTime) {
  ActiveWindow window(5);
  ASSERT_TRUE(window.Advance(1, {El(1, 1)}).ok());
  ASSERT_TRUE(window.Advance(3, {}).ok());
  EXPECT_EQ(window.now(), 3);
  EXPECT_TRUE(window.IsActive(1));
}

TEST(ActiveWindowTest, PaperActiveSetAtT8) {
  // Table 1: at t=8 with T=4, A_8 contains everything except e4.
  ActiveWindow window(4);
  ASSERT_TRUE(window.Advance(1, {El(1, 1)}).ok());
  ASSERT_TRUE(window.Advance(2, {El(2, 2)}).ok());
  ASSERT_TRUE(window.Advance(3, {El(3, 3)}).ok());
  ASSERT_TRUE(window.Advance(4, {El(4, 4, {3})}).ok());
  ASSERT_TRUE(window.Advance(5, {El(5, 5, {1})}).ok());
  ASSERT_TRUE(window.Advance(6, {El(6, 6, {3})}).ok());
  ASSERT_TRUE(window.Advance(7, {El(7, 7, {2})}).ok());
  ASSERT_TRUE(window.Advance(8, {El(8, 8, {2, 3, 6})}).ok());
  EXPECT_EQ(window.num_active(), 7u);
  EXPECT_FALSE(window.IsActive(4));
  for (ElementId id : {1, 2, 3, 5, 6, 7, 8}) {
    EXPECT_TRUE(window.IsActive(id)) << "e" << id;
  }
  // I_8(e3) = {e6, e8}: e4's referral expired with e4.
  const auto& r3 = window.ReferrersOf(3);
  ASSERT_EQ(r3.size(), 2u);
  EXPECT_EQ(r3[0].id, 6);
  EXPECT_EQ(r3[1].id, 8);
}

}  // namespace
}  // namespace ksir
