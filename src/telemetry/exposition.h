// Exposition endpoints: serialize a MetricRegistry as Prometheus text
// (text/plain; version 0.0.4) or a JSON snapshot, and a Tracer as
// chrome://tracing / Perfetto JSON. Pure functions over point-in-time
// snapshots — callers decide where the bytes go (stdout, a file, an HTTP
// response).
#ifndef KSIR_TELEMETRY_EXPOSITION_H_
#define KSIR_TELEMETRY_EXPOSITION_H_

#include <string>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace ksir {

/// Prometheus text exposition: # HELP / # TYPE headers, counter and gauge
/// samples, histograms as cumulative `_bucket{le="..."}` series plus
/// `_sum` / `_count`.
std::string PrometheusText(const MetricRegistry& registry);

/// JSON snapshot: {"counters": {...}, "gauges": {...}, "histograms":
/// {name: {"count", "sum", "p50", "p95", "p99", "buckets": [[le, n],...]}}}
/// with cumulative bucket counts matching the Prometheus exposition.
std::string MetricsJson(const MetricRegistry& registry);

/// chrome://tracing-compatible JSON object ({"traceEvents": [...]}) of the
/// tracer's buffered spans; load in chrome://tracing or ui.perfetto.dev.
std::string ChromeTraceJson(const Tracer& tracer);

}  // namespace ksir

#endif  // KSIR_TELEMETRY_EXPOSITION_H_
