#include "core/index_maintainer.h"

#include "common/check.h"

namespace ksir {

IndexMaintainer::IndexMaintainer(const ScoringContext* ctx,
                                 RankedListIndex* index, RefreshMode mode,
                                 ScoreMaintenance maintenance)
    : ctx_(ctx),
      index_(index),
      mode_(mode),
      maintenance_(maintenance),
      cache_(ctx) {
  KSIR_CHECK(ctx != nullptr);
  KSIR_CHECK(index != nullptr);
}

void IndexMaintainer::Apply(const ActiveWindow::UpdateResult& update) {
  if (maintenance_ == ScoreMaintenance::kIncremental) {
    ApplyIncremental(update);
  } else {
    ApplyRecompute(update);
  }
}

void IndexMaintainer::ApplyIncremental(
    const ActiveWindow::UpdateResult& update) {
  const ActiveWindow& window = ctx_->window();
  // Expiry first: expired ids are no longer in the window store.
  for (ElementId id : update.expired) {
    index_->Erase(id);
    cache_.Erase(id);
  }
  // Inserted and resurrected elements get the one full scan of their
  // lifetime; the window's referrer sets already reflect this bucket, so
  // their edge deltas are folded in here (and omitted from the edge lists).
  for (ElementId id : update.inserted) InsertFresh(id);
  for (ElementId id : update.resurrected) InsertFresh(id);
  // Edge deltas keep the cached influence halves exact — in *both* refresh
  // modes. Under kPaper the lists may stay stale-high, but the cache always
  // holds the true I_{i,t}(e), so the next reposition lands exactly where a
  // full recompute would. gained_edges arrive grouped by referrer (phase-1
  // order of Advance), so the referrer lookup is memoized across each run;
  // lost_edges interleave referrers (they are grouped by target), so for
  // them the memo is merely opportunistic.
  const SocialElement* referrer = nullptr;
  ElementId referrer_id = kInvalidElementId;
  for (const ActiveWindow::EdgeDelta& edge : update.gained_edges) {
    if (edge.referrer != referrer_id) {
      referrer = window.Find(edge.referrer);
      referrer_id = edge.referrer;
      KSIR_CHECK(referrer != nullptr);
    }
    cache_.AddEdge(edge.target, referrer->topics);
  }
  referrer = nullptr;
  referrer_id = kInvalidElementId;
  for (const ActiveWindow::EdgeDelta& edge : update.lost_edges) {
    if (edge.referrer != referrer_id) {
      // The expired referrer already left A_t; its element (and topic
      // vector) is still retained in the archive for this very lookup.
      referrer = window.FindIncludingArchived(edge.referrer);
      referrer_id = edge.referrer;
      KSIR_CHECK(referrer != nullptr);
    }
    cache_.RemoveEdge(edge.target, referrer->topics);
  }
  for (ElementId id : update.gained_referrer) {
    RepositionFromCache(id);
  }
  if (mode_ == RefreshMode::kExact) {
    for (ElementId id : update.lost_referrer) {
      RepositionFromCache(id);
    }
  }
}

void IndexMaintainer::ApplyRecompute(
    const ActiveWindow::UpdateResult& update) {
  const ActiveWindow& window = ctx_->window();
  for (ElementId id : update.expired) {
    index_->Erase(id);
  }
  for (ElementId id : update.inserted) {
    const SocialElement* e = window.Find(id);
    KSIR_CHECK(e != nullptr);
    index_->Insert(id, ctx_->AllTopicScores(*e), window.LastReferredAt(id));
  }
  // Resurrected elements were erased from the lists when they deactivated;
  // they re-enter with freshly computed scores.
  for (ElementId id : update.resurrected) {
    const SocialElement* e = window.Find(id);
    KSIR_CHECK(e != nullptr);
    index_->Insert(id, ctx_->AllTopicScores(*e), window.LastReferredAt(id));
  }
  for (ElementId id : update.gained_referrer) {
    RepositionRecompute(id);
  }
  if (mode_ == RefreshMode::kExact) {
    for (ElementId id : update.lost_referrer) {
      RepositionRecompute(id);
    }
  }
}

void IndexMaintainer::InsertFresh(ElementId id) {
  const SocialElement* e = ctx_->window().Find(id);
  KSIR_CHECK(e != nullptr);
  cache_.Insert(*e);
  cache_.ComposeScores(id, &scratch_scores_);
  index_->Insert(id, scratch_scores_, ctx_->window().LastReferredAt(id));
}

void IndexMaintainer::RepositionRecompute(ElementId id) {
  const SocialElement* e = ctx_->window().Find(id);
  KSIR_CHECK(e != nullptr);
  index_->Update(id, ctx_->AllTopicScores(*e),
                 ctx_->window().LastReferredAt(id));
}

void IndexMaintainer::RepositionFromCache(ElementId id) {
  cache_.ComposeScores(id, &scratch_scores_);
  index_->UpdateTrusted(id, scratch_scores_,
                        ctx_->window().LastReferredAt(id));
}

}  // namespace ksir
