// Figure 11: result score of all five methods with varying k.
//
// Expected shape (paper): MTTD ~= CELF (> 99%), MTTS > 95% of CELF,
// SieveStreaming below both, Top-k Representative the lowest and degrading
// relative to the others as k grows (overlaps ignored).
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace ksir;
  using namespace ksir::bench;
  PrintBanner("Figure 11 - result score vs k (all methods)",
              "EDBT'19 Fig. 11(a)-(c)");

  const std::size_t num_queries = NumQueries(GetScale());
  for (int which = 0; which < 3; ++which) {
    const Dataset dataset = MakeDataset(which);
    const auto engine = BuildAndFeed(dataset, MakeConfig(dataset));
    const auto workload = MakeWorkload(dataset, num_queries);
    std::printf("\n[%s]\n", dataset.name.c_str());
    PrintHeaderRow("k", {"CELF", "Sieve", "Top-k Rep.", "MTTS", "MTTD"});
    for (const int k : {5, 10, 15, 20, 25}) {
      const CellStats celf =
          RunWorkload(*engine, workload, Algorithm::kCelf, k, 0.1);
      const CellStats sieve =
          RunWorkload(*engine, workload, Algorithm::kSieveStreaming, k, 0.1);
      const CellStats topk = RunWorkload(
          *engine, workload, Algorithm::kTopkRepresentative, k, 0.1);
      const CellStats mtts =
          RunWorkload(*engine, workload, Algorithm::kMtts, k, 0.1);
      const CellStats mttd =
          RunWorkload(*engine, workload, Algorithm::kMttd, k, 0.1);
      PrintRow(std::to_string(k),
               {celf.mean_score, sieve.mean_score, topk.mean_score,
                mtts.mean_score, mttd.mean_score},
               4);
    }
  }
  return 0;
}
