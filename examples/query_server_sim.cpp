// Query-server simulation: the paper's deployment claim is that thousands
// of users can submit ad-hoc k-SIR queries that must each be answered in
// real time while the stream keeps flowing.
//
// This example runs the claim through the sharded service (src/service/):
// one writer thread ingests a RedditSim stream bucket by bucket through the
// ShardedIngestor (partitioned across 4 shard engines); several reader
// threads fire random keyword queries that the QueryPlanner fans out and
// merges, with repeated queries between bucket boundaries served from the
// epoch-keyed ResultCache. Reports query throughput, latency percentiles
// per algorithm, the service counters, and — telemetry runs at kCounters —
// the per-stage maintenance breakdown from the metrics registry.
//
//   $ ./query_server_sim [METRICS.prom] [NUM_ELEMENTS]
//
// With METRICS.prom the full Prometheus text exposition is written there
// at exit (CI validates it with tools/check_metrics_exposition.py);
// NUM_ELEMENTS overrides the generated stream size (default 8000).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "service/service.h"
#include "stream/generator.h"
#include "topic/inference.h"

namespace {

using namespace ksir;  // NOLINT(build/namespaces) - example brevity

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1));
  return values[idx];
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("Query-server simulation: sharded service, concurrent k-SIR "
              "queries\n");
  std::printf("=========================================================\n");

  const char* metrics_path = argc > 1 ? argv[1] : nullptr;
  StreamProfile profile = RedditSimProfile();
  profile.num_elements = 8000;
  if (argc > 2) {
    const long n = std::atol(argv[2]);
    KSIR_CHECK(n > 0);
    profile.num_elements = static_cast<std::size_t>(n);
  }
  auto generated = GenerateStream(profile);
  KSIR_CHECK(generated.ok());
  const GeneratedStream& stream = *generated;

  ServiceConfig config;
  config.engine.scoring.eta = 20.0;
  config.engine.window_length = 24 * 3600;
  config.engine.bucket_length = 15 * 60;
  config.num_shards = 4;
  // Stage timers + histograms on: this sim doubles as the live-exposition
  // fixture CI validates, and its report includes the stage breakdown.
  config.telemetry.level = TelemetryLevel::kCounters;
  auto created = KsirService::Create(config, &stream.model);
  KSIR_CHECK(created.ok());
  KsirService& service = **created;

  // Pre-infer a pool of random keyword query vectors (frequency-weighted
  // keyword draws, 1-5 keywords each, as in Section 5.1). A pool of 64
  // against thousands of queries is exactly the trending-query pattern the
  // result cache exists for.
  TopicInferencer inferencer(&stream.model);
  std::vector<double> word_weights(stream.vocab.size());
  for (std::size_t w = 0; w < stream.vocab.size(); ++w) {
    word_weights[w] = static_cast<double>(
        stream.vocab.OccurrenceCount(static_cast<WordId>(w)) + 1);
  }
  AliasTable word_sampler(word_weights);
  Rng rng(2024);
  std::vector<SparseVector> query_pool;
  for (int i = 0; i < 64; ++i) {
    const auto num_keywords = 1 + rng.NextUint64(5);
    std::vector<WordId> keywords;
    for (std::size_t j = 0; j < num_keywords; ++j) {
      keywords.push_back(static_cast<WordId>(word_sampler.Sample(&rng)));
    }
    query_pool.push_back(
        inferencer.InferSparse(Document::FromWordIds(keywords), i));
  }

  // Standing subscriptions: 48 users across 16 distinct interests drawn
  // from the same pool. The subscription engine groups identical queries
  // (one shared evaluation per group per round) and the inverted topic
  // index wakes only the groups each bucket actually touched.
  std::atomic<std::int64_t> standing_updates{0};
  std::atomic<std::int64_t> standing_delta_events{0};
  for (int s = 0; s < 48; ++s) {
    KsirQuery standing;
    standing.k = 10;
    standing.epsilon = 0.1;
    standing.algorithm = Algorithm::kMttd;
    standing.x = query_pool[static_cast<std::size_t>(s % 16)];
    service.standing_queries().Subscribe(
        standing, [&](const SubscriptionUpdate& update) {
          standing_updates.fetch_add(1, std::memory_order_relaxed);
          standing_delta_events.fetch_add(
              static_cast<std::int64_t>(update.num_deltas),
              std::memory_order_relaxed);
        });
  }

  struct AlgoStats {
    Algorithm algorithm;
    std::vector<double> latencies_ms;
    std::mutex mutex;
  };
  AlgoStats mtts{Algorithm::kMtts, {}, {}};
  AlgoStats mttd{Algorithm::kMttd, {}, {}};
  std::vector<AlgoStats*> algos = {&mtts, &mttd};

  std::atomic<bool> done{false};
  std::atomic<std::int64_t> total_queries{0};

  // Leave a core for the writer; a short think-time between queries keeps
  // the ingestion thread from starving on small machines.
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned num_readers = std::clamp(hw - 1, 1u, 4u);
  std::vector<std::thread> readers;
  for (unsigned t = 0; t < num_readers; ++t) {
    readers.emplace_back([&, t]() {
      Rng thread_rng(9000 + t);
      while (!done.load(std::memory_order_relaxed)) {
        AlgoStats* algo = algos[thread_rng.NextUint64(algos.size())];
        KsirQuery query;
        query.k = 10;
        query.epsilon = 0.1;
        query.algorithm = algo->algorithm;
        query.x = query_pool[thread_rng.NextUint64(query_pool.size())];
        WallTimer latency;
        const auto result = service.Query(query);
        if (result.ok()) {
          const double elapsed_ms = latency.ElapsedMillis();
          total_queries.fetch_add(1, std::memory_order_relaxed);
          std::lock_guard lock(algo->mutex);
          algo->latencies_ms.push_back(elapsed_ms);
        }
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      }
    });
  }

  // Writer: feed the whole stream through the sharded ingestor.
  WallTimer wall;
  std::size_t begin = 0;
  Timestamp bucket_end = 0;
  while (begin < stream.elements.size()) {
    bucket_end += config.engine.bucket_length;
    std::vector<SocialElement> bucket;
    while (begin < stream.elements.size() &&
           stream.elements[begin].ts <= bucket_end) {
      bucket.push_back(stream.elements[begin]);
      ++begin;
    }
    KSIR_CHECK(service.AdvanceTo(bucket_end, std::move(bucket)).ok());
  }
  done.store(true);
  for (auto& reader : readers) reader.join();
  const double elapsed_s = wall.ElapsedMillis() / 1000.0;

  std::printf("\n%u reader threads, 1 writer, %zu shards; %lld queries "
              "answered while ingesting %zu elements in %.1f s "
              "(%.0f queries/s).\n",
              num_readers, service.num_shards(),
              static_cast<long long>(total_queries.load()),
              stream.elements.size(), elapsed_s,
              static_cast<double>(total_queries.load()) / elapsed_s);

  std::printf("\n%-8s %10s %10s %10s %10s\n", "algo", "count", "p50 (ms)",
              "p95 (ms)", "p99 (ms)");
  for (AlgoStats* algo : algos) {
    std::printf("%-8s %10zu %10.3f %10.3f %10.3f\n",
                std::string(AlgorithmName(algo->algorithm)).c_str(),
                algo->latencies_ms.size(),
                Percentile(algo->latencies_ms, 0.50),
                Percentile(algo->latencies_ms, 0.95),
                Percentile(algo->latencies_ms, 0.99));
  }

  const ServiceStats stats = service.stats();
  std::printf("\nService: epoch=%llu, %.3f ms/element ingestion with "
              "concurrent readers.\n",
              static_cast<unsigned long long>(stats.epoch),
              stats.ingestion.total_update_ms /
                  static_cast<double>(stats.ingestion.elements_ingested));
  std::printf("Cache: %lld hits / %lld misses (%.0f%% hit rate), "
              "%lld invalidated across epochs.\n",
              static_cast<long long>(stats.cache.hits),
              static_cast<long long>(stats.cache.misses),
              100.0 * static_cast<double>(stats.cache.hits) /
                  static_cast<double>(
                      std::max<std::int64_t>(1, stats.cache.hits +
                                                    stats.cache.misses)),
              static_cast<long long>(stats.cache.invalidated));
  std::printf("Planner: %lld plans, %lld merge wins, %lld epoch retries; "
              "%lld cross-shard refs dropped at ingest.\n",
              static_cast<long long>(stats.planner.plans),
              static_cast<long long>(stats.planner.merge_wins),
              static_cast<long long>(stats.planner.epoch_retries),
              static_cast<long long>(stats.ingestion.cross_shard_refs));

  const auto& sub_totals =
      service.standing_queries().subscriptions().totals();
  std::printf("Standing subscriptions: %lld registered in %zu groups; "
              "%lld activated / %lld skipped across rounds, %lld "
              "evaluations (%lld served by group sharing), %lld delta "
              "events in %lld callbacks.\n",
              static_cast<long long>(sub_totals.registered),
              service.standing_queries().subscriptions().num_groups(),
              static_cast<long long>(sub_totals.activated),
              static_cast<long long>(sub_totals.skipped),
              static_cast<long long>(sub_totals.evaluations),
              static_cast<long long>(sub_totals.shared_hits),
              static_cast<long long>(
                  standing_delta_events.load(std::memory_order_relaxed)),
              static_cast<long long>(
                  standing_updates.load(std::memory_order_relaxed)));

  // Per-stage maintenance breakdown straight off the metrics registry:
  // where the ingestion wall time above actually went.
  const RegistrySnapshot snapshot =
      service.telemetry().registry().Snapshot();
  const auto hist_sum_ms = [&snapshot](const char* name) {
    const MetricSnapshot* m = snapshot.Find(name);
    return m != nullptr ? m->histogram.sum * 1e3 : 0.0;
  };
  std::printf("Maintenance stages: expiry %.1f ms, score %.1f ms, gather "
              "%.1f ms, list-apply %.1f ms (bucket-apply total %.1f ms "
              "across shards).\n",
              hist_sum_ms("ksir_maintainer_stage_expiry_seconds"),
              hist_sum_ms("ksir_maintainer_stage_score_seconds"),
              hist_sum_ms("ksir_maintainer_stage_gather_seconds"),
              hist_sum_ms("ksir_maintainer_stage_list_apply_seconds"),
              hist_sum_ms("ksir_maintainer_bucket_apply_seconds"));

  if (metrics_path != nullptr) {
    const std::string text = service.MetricsText();
    std::FILE* out = std::fopen(metrics_path, "w");
    KSIR_CHECK(out != nullptr);
    std::fwrite(text.data(), 1, text.size(), out);
    std::fclose(out);
    std::printf("Wrote Prometheus exposition (%zu bytes) to %s.\n",
                text.size(), metrics_path);
  }
  return 0;
}
