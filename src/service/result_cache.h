// Epoch-keyed k-SIR result cache.
//
// Between two bucket boundaries the engine state is immutable, so two
// queries with the same (k, algorithm, epsilon, query vector) issued in the
// same epoch must return the same result — the dominant trending-query
// pattern (many users asking about the same breaking topic) is served
// without touching the shards. Keys embed the service's bucket epoch, so a
// window slide implicitly misses every old entry; InvalidateBefore() then
// reclaims the memory eagerly. Query vectors are quantized onto a small
// grid before keying, so vectors that differ only by inference noise share
// an entry.
//
// Storage is SEGMENTED: the key hash selects one of up to 8 independent
// (mutex + LRU + map) segments, so concurrent readers on different keys
// never contend on one lock — the last query-path contention point after
// the stats counters went atomic. Eviction is per segment (approximate
// global LRU; capacity is split evenly), which is invisible at service
// capacities; small caches (< 64 entries per would-be segment) keep a
// single segment and therefore exact LRU semantics. The stats counters and
// the invalidation floor stay process-wide atomics readable with no lock.
#ifndef KSIR_SERVICE_RESULT_CACHE_H_
#define KSIR_SERVICE_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/query.h"
#include "telemetry/telemetry.h"

namespace ksir {

/// Quantized cache key: epoch + query shape.
struct ResultCacheKey {
  std::uint64_t epoch = 0;
  std::int32_t k = 0;
  Algorithm algorithm = Algorithm::kMttd;
  std::int64_t epsilon_q = 0;
  /// (topic, quantized weight), sorted by topic.
  std::vector<std::pair<std::int32_t, std::int64_t>> x_q;
  /// Memoized hash, filled by MakeKey, so segment selection and the map
  /// probe walk the (potentially long) quantized vector ONCE per
  /// operation. Not part of key identity; 0 = not memoized (recomputed on
  /// demand — equal keys always hash equal either way).
  std::size_t hash = 0;

  bool operator==(const ResultCacheKey& other) const {
    return epoch == other.epoch && k == other.k &&
           algorithm == other.algorithm && epsilon_q == other.epsilon_q &&
           x_q == other.x_q;
  }
};

struct ResultCacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t evictions = 0;
  std::int64_t invalidated = 0;
  /// Inserts dropped because their epoch was below the invalidation floor
  /// (a concurrent InvalidateBefore had already swept that epoch; admitting
  /// the entry would waste LRU capacity on a result no lookup can match).
  std::int64_t stale_inserts = 0;
};

/// Bounded LRU cache. Thread-safe (internal mutex); all operations are
/// O(key size) expected.
class ResultCache {
 public:
  /// `capacity` >= 1 entries; `quantum` > 0 is the query-vector grid step
  /// (weights within the same quantum share a key). `telemetry` (optional,
  /// must outlive the cache) receives the hit/miss/eviction counters; null
  /// gives the cache a private kOff Telemetry so stats() stays
  /// per-instance.
  explicit ResultCache(std::size_t capacity, double quantum = 1e-4,
                       Telemetry* telemetry = nullptr);

  /// Builds the key of `query` at `epoch`.
  ResultCacheKey MakeKey(const KsirQuery& query, std::uint64_t epoch) const;

  /// Returns the cached result and refreshes its LRU position, or nullopt.
  std::optional<QueryResult> Lookup(const ResultCacheKey& key);

  /// Inserts (or overwrites) an entry, evicting the least recently used
  /// entry when over capacity. An entry whose epoch is below the highest
  /// InvalidateBefore() floor is dropped instead (counted in
  /// stats().stale_inserts): a query that raced a bucket advance must not
  /// park its dead result in the LRU until eviction.
  void Insert(const ResultCacheKey& key, const QueryResult& result);

  /// Drops every entry with epoch < `epoch` (called after each bucket) and
  /// raises the admission floor so late Inserts below it are rejected.
  void InvalidateBefore(std::uint64_t epoch);

  /// Drops everything.
  void Clear();

  /// Independent mutex+LRU segments backing the store (1 for small
  /// capacities — exact LRU — up to 8 at service capacities).
  std::size_t num_segments() const { return segments_.size(); }

  /// Point-in-time counters — a thin view over the registry counters
  /// (`ksir_cache_*_total`). Lock-free: the stats path never contends with
  /// (or races against) queries and invalidation sweeps. The snapshot is
  /// per-counter consistent, not cross-counter consistent.
  ResultCacheStats stats() const;

  /// Current admission floor (highest epoch ever swept). Lock-free; safe to
  /// poll from monitoring threads while buckets advance.
  std::uint64_t invalidation_floor() const {
    return floor_epoch_.load(std::memory_order_acquire);
  }

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  double quantum() const { return quantum_; }

 private:
  struct KeyHash {
    std::size_t operator()(const ResultCacheKey& key) const;
  };
  using LruList = std::list<std::pair<ResultCacheKey, QueryResult>>;

  /// One independent LRU shard. Entries land by key hash; each segment
  /// holds capacity_ / num_segments entries (rounded up).
  struct Segment {
    mutable std::mutex mutex;
    LruList lru;  // front = most recently used
    std::unordered_map<ResultCacheKey, LruList::iterator, KeyHash> map;
  };

  Segment& SegmentFor(const ResultCacheKey& key) const;

  std::size_t capacity_;
  double quantum_;
  std::size_t segment_capacity_;
  /// Sized at construction, never resized — the vector itself is shared
  /// read-only, all mutation happens inside a segment under its mutex.
  mutable std::vector<Segment> segments_;
  /// Fallback Telemetry (kOff) owned when none was passed.
  std::unique_ptr<Telemetry> owned_telemetry_;
  Telemetry* telemetry_;
  /// Counters behind stats() (registry-backed, `ksir_cache_*_total`).
  /// Sharded relaxed atomics: incremented under a segment mutex on the map
  /// paths but READ without it — the previous plain-int64 fields made
  /// every monitoring read either take the hot-path lock or race.
  Counter* hits_;
  Counter* misses_;
  Counter* evictions_;
  Counter* invalidated_;
  Counter* stale_inserts_;
  /// Highest epoch ever passed to InvalidateBefore: entries below it have
  /// been swept and must not be re-admitted. Atomic so the stats path can
  /// read it without a lock; the sweep orders its store before sweeping.
  std::atomic<std::uint64_t> floor_epoch_{0};
};

}  // namespace ksir

#endif  // KSIR_SERVICE_RESULT_CACHE_H_
