#include "telemetry/trace.h"

#include <functional>
#include <thread>

#include "common/check.h"

namespace ksir {

namespace {

std::uint32_t FoldedThreadId() {
  thread_local const std::uint32_t tid = static_cast<std::uint32_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0xffffffu);
  return tid;
}

}  // namespace

Tracer::Tracer(bool enabled, std::size_t sample_period, std::size_t capacity)
    : enabled_(enabled),
      sample_period_(sample_period),
      capacity_(capacity),
      epoch_(std::chrono::steady_clock::now()) {
  KSIR_CHECK(sample_period_ >= 1);
  if (enabled_) events_.reserve(capacity_);
}

void Tracer::Emit(const char* name,
                  std::chrono::steady_clock::time_point begin,
                  std::chrono::steady_clock::time_point end) {
  if (!armed()) return;
  TraceEvent event;
  event.name = name;
  event.ts_us =
      std::chrono::duration<double, std::micro>(begin - epoch_).count();
  event.dur_us = std::chrono::duration<double, std::micro>(end - begin).count();
  event.tid = FoldedThreadId();
  std::lock_guard lock(mutex_);
  if (events_.size() >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(event);
}

std::vector<TraceEvent> Tracer::Events() const {
  std::lock_guard lock(mutex_);
  return events_;
}

void Tracer::Clear() {
  std::lock_guard lock(mutex_);
  events_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

}  // namespace ksir
