#include "core/candidate_state.h"

#include <algorithm>

#include "common/check.h"

namespace ksir {

CandidateState::CandidateState(const ScoringContext* ctx,
                               const SparseVector* query)
    : ctx_(ctx) {
  KSIR_CHECK(ctx != nullptr);
  KSIR_CHECK(query != nullptr);
  topics_.reserve(query->nnz());
  for (const auto& [topic, weight] : query->entries()) {
    if (weight <= 0.0) continue;
    topics_.push_back(TopicState{topic, weight, {}, {}});
  }
}

double CandidateState::MarginalGain(const SocialElement& e) const {
  if (member_ids_.contains(e.id)) return 0.0;
  double gain = 0.0;
  const auto& referrers = ctx_->window().ReferrersOf(e.id);
  for (const TopicState& state : topics_) {
    const double p_e = e.topics.Get(state.topic);
    if (p_e <= 0.0) continue;

    // Semantic gain: words where e's sigma beats the current best.
    double semantic_gain = 0.0;
    for (const auto& [word, count] : e.doc.word_counts()) {
      const double sigma = ctx_->Sigma(state.topic, word, count, p_e);
      if (sigma <= 0.0) continue;
      const auto it = state.best_sigma.find(word);
      const double best = it == state.best_sigma.end() ? 0.0 : it->second;
      if (sigma > best) semantic_gain += sigma - best;
    }

    // Influence gain: residual coverage probability of e's referrers.
    double influence_gain = 0.0;
    for (const Referrer& r : referrers) {
      const SocialElement* referrer = ctx_->window().Find(r.id);
      KSIR_DCHECK(referrer != nullptr);
      if (referrer == nullptr) continue;
      const double p_edge = p_e * referrer->topics.Get(state.topic);
      if (p_edge <= 0.0) continue;
      const auto it = state.survive.find(r.id);
      const double survive = it == state.survive.end() ? 1.0 : it->second;
      influence_gain += p_edge * survive;
    }

    gain += state.query_weight *
            (ctx_->params().lambda * semantic_gain +
             ctx_->influence_factor() * influence_gain);
  }
  return gain;
}

double CandidateState::Add(const SocialElement& e) {
  KSIR_CHECK(!member_ids_.contains(e.id));
  double gain = 0.0;
  const auto& referrers = ctx_->window().ReferrersOf(e.id);
  for (TopicState& state : topics_) {
    const double p_e = e.topics.Get(state.topic);
    if (p_e <= 0.0) continue;

    // Pre-size from the incoming element so the insertion loops below never
    // rehash mid-flight (and the capacity is reused across CELF/MTTS
    // add-rounds instead of being reallocated per evaluation).
    state.best_sigma.reserve(state.best_sigma.size() +
                             e.doc.word_counts().size());
    state.survive.reserve(state.survive.size() + referrers.size());

    double semantic_gain = 0.0;
    for (const auto& [word, count] : e.doc.word_counts()) {
      const double sigma = ctx_->Sigma(state.topic, word, count, p_e);
      if (sigma <= 0.0) continue;
      auto [it, inserted] = state.best_sigma.try_emplace(word, sigma);
      if (inserted) {
        semantic_gain += sigma;
      } else if (sigma > it->second) {
        semantic_gain += sigma - it->second;
        it->second = sigma;
      }
    }

    double influence_gain = 0.0;
    for (const Referrer& r : referrers) {
      const SocialElement* referrer = ctx_->window().Find(r.id);
      KSIR_DCHECK(referrer != nullptr);
      if (referrer == nullptr) continue;
      const double p_edge = p_e * referrer->topics.Get(state.topic);
      if (p_edge <= 0.0) continue;
      auto [it, inserted] = state.survive.try_emplace(r.id, 1.0);
      influence_gain += p_edge * it->second;
      it->second *= (1.0 - p_edge);
    }

    gain += state.query_weight *
            (ctx_->params().lambda * semantic_gain +
             ctx_->influence_factor() * influence_gain);
  }
  members_.push_back(e.id);
  member_ids_.insert(e.id);
  score_ += gain;
  return gain;
}

}  // namespace ksir
