// Component microbenchmarks (google-benchmark): ranked-list operations,
// marginal-gain evaluation, cursor traversal, topic inference, and window
// advancement — the building blocks whose costs the paper's complexity
// analysis (Sections 4.1-4.3) is written in terms of.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/candidate_state.h"
#include "core/ranked_list.h"
#include "core/traversal.h"
#include "stream/generator.h"
#include "topic/inference.h"
#include "core/engine.h"

namespace ksir {
namespace {

// Shared generated stream + engine, built once (google-benchmark re-enters
// the benchmark body many times).
struct SharedSetup {
  GeneratedStream stream;
  std::unique_ptr<KsirEngine> engine;
  SparseVector query;

  SharedSetup() : stream(MakeStream()) {
    EngineConfig config;
    config.scoring.eta = 20.0;
    config.window_length = 24 * 3600;
    config.bucket_length = 15 * 60;
    engine = std::make_unique<KsirEngine>(config, &stream.model);
    KSIR_CHECK(engine->Append(stream.elements).ok());
    query = SparseVector::FromEntries({{0, 0.4}, {1, 0.3}, {2, 0.3}});
  }

  static GeneratedStream MakeStream() {
    StreamProfile profile = RedditSimProfile();
    profile.num_elements = 8000;
    auto stream = GenerateStream(profile);
    KSIR_CHECK(stream.ok());
    return std::move(stream).value();
  }
};

SharedSetup& Setup() {
  static auto* const kSetup = new SharedSetup();
  return *kSetup;
}

void BM_RankedListInsertErase(benchmark::State& state) {
  RankedList list;
  Rng rng(1);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n; ++i) {
    list.Insert(static_cast<ElementId>(i), rng.NextDouble());
  }
  ElementId next = static_cast<ElementId>(n);
  for (auto _ : state) {
    list.Insert(next, rng.NextDouble());
    list.Erase(next - static_cast<ElementId>(n));
    ++next;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RankedListInsertErase)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_RankedListUpdate(benchmark::State& state) {
  RankedList list;
  Rng rng(2);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n; ++i) {
    list.Insert(static_cast<ElementId>(i), rng.NextDouble());
  }
  for (auto _ : state) {
    const auto id = static_cast<ElementId>(rng.NextUint64(n));
    list.Update(id, rng.NextDouble());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RankedListUpdate)->Arg(1000)->Arg(100000);

void BM_MarginalGain(benchmark::State& state) {
  SharedSetup& setup = Setup();
  const auto& window = setup.engine->window();
  CandidateState candidate(&setup.engine->scoring(), &setup.query);
  std::vector<ElementId> ids = window.ActiveIds();
  std::sort(ids.begin(), ids.end());
  // Partially fill the candidate so gains exercise the overlap maps.
  for (std::size_t i = 0; i < std::min<std::size_t>(5, ids.size()); ++i) {
    candidate.Add(*window.Find(ids[i * 7 % ids.size()]));
  }
  std::size_t cursor = 0;
  for (auto _ : state) {
    const SocialElement* e = window.Find(ids[cursor++ % ids.size()]);
    benchmark::DoNotOptimize(candidate.MarginalGain(*e));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MarginalGain);

void BM_ElementScore(benchmark::State& state) {
  SharedSetup& setup = Setup();
  const auto& window = setup.engine->window();
  std::vector<ElementId> ids = window.ActiveIds();
  std::size_t cursor = 0;
  for (auto _ : state) {
    const SocialElement* e = window.Find(ids[cursor++ % ids.size()]);
    benchmark::DoNotOptimize(
        setup.engine->scoring().ElementScore(*e, setup.query));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ElementScore);

void BM_CursorFullTraversal(benchmark::State& state) {
  SharedSetup& setup = Setup();
  for (auto _ : state) {
    RankedListCursor cursor(&setup.engine->index(), &setup.query);
    std::size_t popped = 0;
    while (cursor.PopNext().has_value()) ++popped;
    benchmark::DoNotOptimize(popped);
  }
}
BENCHMARK(BM_CursorFullTraversal);

void BM_TopicInference(benchmark::State& state) {
  SharedSetup& setup = Setup();
  TopicInferencer inferencer(&setup.stream.model);
  const Document& doc = setup.stream.elements[42].doc;
  std::uint64_t salt = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(inferencer.InferSparse(doc, salt++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TopicInference);

void BM_QueryMtts(benchmark::State& state) {
  SharedSetup& setup = Setup();
  KsirQuery query;
  query.k = 10;
  query.x = setup.query;
  query.algorithm = Algorithm::kMtts;
  query.epsilon = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(setup.engine->Query(query)->score);
  }
}
BENCHMARK(BM_QueryMtts);

void BM_QueryMttd(benchmark::State& state) {
  SharedSetup& setup = Setup();
  KsirQuery query;
  query.k = 10;
  query.x = setup.query;
  query.algorithm = Algorithm::kMttd;
  query.epsilon = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(setup.engine->Query(query)->score);
  }
}
BENCHMARK(BM_QueryMttd);

void BM_WindowAdvance(benchmark::State& state) {
  // Measures pure window + index maintenance by replaying a stream chunk.
  StreamProfile profile = TwitterSimProfile();
  profile.num_elements = 4000;
  auto stream = GenerateStream(profile);
  KSIR_CHECK(stream.ok());
  for (auto _ : state) {
    state.PauseTiming();
    EngineConfig config;
    config.scoring.eta = 200.0;
    config.window_length = 24 * 3600;
    config.bucket_length = 15 * 60;
    KsirEngine engine(config, &stream->model);
    state.ResumeTiming();
    KSIR_CHECK(engine.Append(stream->elements).ok());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(profile.num_elements));
}
BENCHMARK(BM_WindowAdvance)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ksir

BENCHMARK_MAIN();
