#include "search/tfidf.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_set>

#include "common/check.h"

namespace ksir {

TfIdfIndex TfIdfIndex::Build(const ActiveWindow& window) {
  TfIdfIndex index;
  window.ForEachActive([&](const SocialElement& e) {
    ++index.num_docs_;
    for (const auto& [word, count] : e.doc.word_counts()) {
      ++index.doc_freq_[word];
    }
  });
  double total_length = 0.0;
  window.ForEachActive([&](const SocialElement& e) {
    ElementVector vec;
    vec.weights.reserve(e.doc.num_distinct_words());
    vec.counts = e.doc.word_counts();
    vec.length = e.doc.num_tokens();
    total_length += static_cast<double>(vec.length);
    double norm_sq = 0.0;
    for (const auto& [word, count] : e.doc.word_counts()) {
      const double w =
          (1.0 + std::log(static_cast<double>(count))) * index.Idf(word);
      if (w <= 0.0) continue;
      vec.weights.emplace_back(word, w);
      norm_sq += w * w;
      index.postings_[word].push_back(e.id);
    }
    vec.norm = std::sqrt(norm_sq);
    index.vectors_.emplace(e.id, std::move(vec));
  });
  if (index.num_docs_ > 0) {
    index.average_length_ =
        total_length / static_cast<double>(index.num_docs_);
  }
  return index;
}

double TfIdfIndex::Idf(WordId word) const {
  const auto it = doc_freq_.find(word);
  const std::int64_t df = it == doc_freq_.end() ? 0 : it->second;
  const double idf = std::log(static_cast<double>(num_docs_) /
                              (1.0 + static_cast<double>(df)));
  return std::max(0.0, idf);
}

double TfIdfIndex::Similarity(ElementId id,
                              const std::vector<WordId>& keywords) const {
  const auto it = vectors_.find(id);
  if (it == vectors_.end()) return 0.0;
  const ElementVector& vec = it->second;
  if (vec.norm <= 0.0) return 0.0;

  // Query vector: tf = 1 per distinct keyword.
  std::unordered_set<WordId> distinct(keywords.begin(), keywords.end());
  double dot = 0.0;
  double query_norm_sq = 0.0;
  for (WordId word : distinct) {
    const double qw = Idf(word);
    if (qw <= 0.0) continue;
    query_norm_sq += qw * qw;
    const auto wit = std::lower_bound(
        vec.weights.begin(), vec.weights.end(), word,
        [](const auto& p, WordId w) { return p.first < w; });
    if (wit != vec.weights.end() && wit->first == word) {
      dot += qw * wit->second;
    }
  }
  if (query_norm_sq <= 0.0) return 0.0;
  return dot / (vec.norm * std::sqrt(query_norm_sq));
}

double TfIdfIndex::ElementSimilarity(ElementId a, ElementId b) const {
  const auto ia = vectors_.find(a);
  const auto ib = vectors_.find(b);
  if (ia == vectors_.end() || ib == vectors_.end()) return 0.0;
  const ElementVector& va = ia->second;
  const ElementVector& vb = ib->second;
  if (va.norm <= 0.0 || vb.norm <= 0.0) return 0.0;
  double dot = 0.0;
  auto pa = va.weights.begin();
  auto pb = vb.weights.begin();
  while (pa != va.weights.end() && pb != vb.weights.end()) {
    if (pa->first < pb->first) {
      ++pa;
    } else if (pb->first < pa->first) {
      ++pb;
    } else {
      dot += pa->second * pb->second;
      ++pa;
      ++pb;
    }
  }
  return dot / (va.norm * vb.norm);
}

double TfIdfIndex::Bm25Score(ElementId id,
                             const std::vector<WordId>& keywords, double k1,
                             double b) const {
  const auto it = vectors_.find(id);
  if (it == vectors_.end()) return 0.0;
  const ElementVector& vec = it->second;
  if (vec.length <= 0 || average_length_ <= 0.0) return 0.0;
  const double norm_len =
      static_cast<double>(vec.length) / average_length_;
  std::unordered_set<WordId> distinct(keywords.begin(), keywords.end());
  double score = 0.0;
  for (WordId word : distinct) {
    const auto wit = std::lower_bound(
        vec.counts.begin(), vec.counts.end(), word,
        [](const auto& p, WordId w) { return p.first < w; });
    if (wit == vec.counts.end() || wit->first != word) continue;
    const double tf = static_cast<double>(wit->second);
    // BM25 idf: ln((N - df + 0.5) / (df + 0.5) + 1), always positive.
    const auto dit = doc_freq_.find(word);
    const double df =
        dit == doc_freq_.end() ? 0.0 : static_cast<double>(dit->second);
    const double idf = std::log(
        (static_cast<double>(num_docs_) - df + 0.5) / (df + 0.5) + 1.0);
    score += idf * tf * (k1 + 1.0) /
             (tf + k1 * (1.0 - b + b * norm_len));
  }
  return score;
}

std::vector<ElementId> TfIdfIndex::TopKBm25(
    const std::vector<WordId>& keywords, std::size_t k, double k1,
    double b) const {
  std::unordered_set<ElementId> candidates;
  std::unordered_set<WordId> distinct(keywords.begin(), keywords.end());
  for (WordId word : distinct) {
    const auto it = postings_.find(word);
    if (it == postings_.end()) continue;
    candidates.insert(it->second.begin(), it->second.end());
  }
  using Scored = std::pair<double, ElementId>;
  std::vector<Scored> scored;
  scored.reserve(candidates.size());
  for (ElementId id : candidates) {
    const double s = Bm25Score(id, keywords, k1, b);
    if (s > 0.0) scored.emplace_back(s, id);
  }
  const std::size_t take = std::min(k, scored.size());
  std::partial_sort(scored.begin(),
                    scored.begin() + static_cast<std::ptrdiff_t>(take),
                    scored.end(), [](const Scored& a, const Scored& b2) {
                      if (a.first != b2.first) return a.first > b2.first;
                      return a.second < b2.second;
                    });
  std::vector<ElementId> result;
  result.reserve(take);
  for (std::size_t i = 0; i < take; ++i) result.push_back(scored[i].second);
  return result;
}

std::vector<ElementId> TfIdfIndex::TopK(const std::vector<WordId>& keywords,
                                        std::size_t k) const {
  // Gather candidates from the postings of the query terms.
  std::unordered_set<ElementId> candidates;
  std::unordered_set<WordId> distinct(keywords.begin(), keywords.end());
  for (WordId word : distinct) {
    const auto it = postings_.find(word);
    if (it == postings_.end()) continue;
    candidates.insert(it->second.begin(), it->second.end());
  }
  using Scored = std::pair<double, ElementId>;
  std::vector<Scored> scored;
  scored.reserve(candidates.size());
  for (ElementId id : candidates) {
    const double sim = Similarity(id, keywords);
    if (sim > 0.0) scored.emplace_back(sim, id);
  }
  const std::size_t take = std::min(k, scored.size());
  std::partial_sort(scored.begin(),
                    scored.begin() + static_cast<std::ptrdiff_t>(take),
                    scored.end(), [](const Scored& a, const Scored& b) {
                      if (a.first != b.first) return a.first > b.first;
                      return a.second < b.second;
                    });
  std::vector<ElementId> result;
  result.reserve(take);
  for (std::size_t i = 0; i < take; ++i) result.push_back(scored[i].second);
  return result;
}

}  // namespace ksir
