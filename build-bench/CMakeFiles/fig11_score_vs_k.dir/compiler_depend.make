# Empty compiler generated dependencies file for fig11_score_vs_k.
# This may be replaced when dependencies are built.
