// KsirEngine: the top-level query-processing system of Figure 4.
//
// Owns the active window, the per-topic ranked lists and the scoring
// context; ingests the stream in buckets (Algorithm 1) and answers ad-hoc
// k-SIR queries with any of the implemented algorithms. Concurrent queries
// are allowed (shared lock); bucket ingestion is exclusive.
#ifndef KSIR_CORE_ENGINE_H_
#define KSIR_CORE_ENGINE_H_

#include <functional>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "common/status.h"
#include "core/index_maintainer.h"
#include "core/query.h"
#include "core/ranked_list.h"
#include "core/scoring.h"
#include "stream/element.h"
#include "telemetry/telemetry.h"
#include "topic/topic_model.h"
#include "window/active_window.h"

namespace ksir {

/// Engine configuration (paper defaults: T = 24 h, L = 15 min,
/// lambda = 0.5, eta = 20 or 200).
struct EngineConfig {
  ScoringParams scoring;
  /// Window length T in stream time units.
  Timestamp window_length = 24 * 3600;
  /// Bucket length L in stream time units; must divide evenly into the
  /// ingestion pattern (buckets end at multiples of L).
  Timestamp bucket_length = 15 * 60;
  /// How long deactivated elements stay resurrectable by late references;
  /// <= 0 means "same as window_length" (see ActiveWindow).
  Timestamp archive_retention = 0;
  RefreshMode refresh_mode = RefreshMode::kExact;
  /// Reposition scoring strategy; kIncremental is the production path,
  /// kRecompute the slow reference baseline (see IndexMaintainer).
  ScoreMaintenance score_maintenance = ScoreMaintenance::kIncremental;
  /// Minimum pending repositions per ranked list (per bucket) before the
  /// incremental maintainer applies them as one merge sweep instead of
  /// per-element updates. 0 disables batching (the single-reposition
  /// reference path, kept for equivalence testing and benchmarking).
  std::size_t reposition_batch_min = kDefaultRepositionBatchMin;
  /// Carry ranked-list position handles through the maintenance pipeline
  /// (window -> score cache -> maintainer -> ranked lists), eliminating the
  /// per-tuple id-table hash probes of the reposition hot path. false keeps
  /// the id-keyed batched baseline (the PR 3 path) for equivalence testing
  /// and benchmarking. Only meaningful under kIncremental with batching on.
  bool carry_handles = true;
  /// Participants in the staged parallel bucket maintenance (the
  /// element-sharded scoring/folding stage and the topic-sharded list
  /// stage; see IndexMaintainer). 0/1 = the serial reference path. Only
  /// the handle pipeline parallelizes; other maintenance flavors ignore
  /// this. The advancing thread is one participant — the engine spawns (or
  /// shares; see KsirEngine's pool parameter and ServiceConfig) a runtime
  /// WorkerPool for the remaining maintenance_threads - 1. Determinism
  /// contract: the parallel apply is bitwise-identical to the serial
  /// handle path, so this knob trades threads for latency only.
  std::size_t maintenance_threads = 0;
  /// Balance cap of the service's chain-affinity shard router: routing an
  /// element onto a shard whose RECENT load (placements within the
  /// trailing window) would exceed `max_shard_imbalance * (least-loaded
  /// shard + 1)` falls back to the least-loaded shard instead (costing
  /// that element's chain edges). 0 disables the cap (pure chain
  /// affinity); values >= 1 enable it. The router enforces the cap with
  /// 10% headroom on its load proxy (floored at exact balance), so the
  /// configured value is the bound intended to hold on the OBSERVED
  /// active-set spread — see ShardRouter. Lives in the engine config so
  /// every deployment seam (service, benches, tests) shares one knob next
  /// to the window/bucket geometry.
  double max_shard_imbalance = 0.0;
  /// Telemetry level and tracing knobs for the engine-owned Telemetry.
  /// Ignored when a shared Telemetry is passed to the constructor (the
  /// sharing owner's config governs); see telemetry.h for the cost model.
  TelemetryConfig telemetry;
};

/// Cumulative ingestion statistics.
struct MaintenanceStats {
  std::int64_t elements_ingested = 0;
  std::int64_t buckets_processed = 0;
  std::int64_t elements_expired = 0;
  std::int64_t dangling_refs = 0;
  /// Total wall time spent in AdvanceTo (window + ranked-list updates).
  double total_update_ms = 0.0;
};

/// Splits `elements` (sorted by ts) into buckets ending at multiples of
/// `bucket_length` (the final open chunk ends at its last element's ts) and
/// feeds each through `advance`. The bucket-splitting rule shared by
/// KsirEngine::Append and the sharded service's Append.
Status AppendInBuckets(
    std::vector<SocialElement> elements, Timestamp bucket_length,
    const std::function<Timestamp()>& now,
    const std::function<Status(Timestamp, std::vector<SocialElement>)>&
        advance);

/// Validates an EngineConfig (positive bucket length, window covering at
/// least one bucket). Returned as Status so services can reject bad configs
/// without dying; the KsirEngine constructor still CHECK-fails on them.
Status ValidateEngineConfig(const EngineConfig& config);

/// True when `config` drives the handle-carrying maintenance pipeline —
/// incremental maintenance with batching and handle carrying on. The
/// ranked lists then drop their id side tables entirely (positions flow
/// through handles and self-locating carried keys).
bool UsesHandlePipeline(const EngineConfig& config);

/// True when `config` runs bucket maintenance on the staged parallel path
/// (handle pipeline with maintenance_threads >= 2).
bool UsesParallelMaintenance(const EngineConfig& config);

/// Self-contained export of one active element: the element itself plus its
/// current in-window referrers (the influenced set I_t(e)). Everything a
/// remote merge step needs to re-evaluate delta(e, x) without access to this
/// engine's window.
struct ElementSnapshot {
  SocialElement element;
  std::vector<SocialElement> referrers;
};

class WorkerPool;

/// Streaming k-SIR query engine.
class KsirEngine {
 public:
  /// `model` must outlive the engine. Elements handed to the engine must
  /// already carry their sparse topic vectors (use TopicInferencer or a
  /// generator's ground truth). When the config enables parallel
  /// maintenance, `maintenance_pool` is the shared runtime pool the staged
  /// apply fans out on (it must outlive the engine — the seam the sharded
  /// service uses to run every shard on ONE process-wide pool); nullptr
  /// makes the engine own a pool built by the runtime factory. `telemetry`
  /// is the shared registry/tracer the engine and its maintainer record
  /// into (the sharded service hands every shard the service-wide one, so
  /// N shards aggregate into one series set); nullptr makes the engine own
  /// one configured by `config.telemetry`.
  KsirEngine(EngineConfig config, const TopicModel* model,
             WorkerPool* maintenance_pool = nullptr,
             Telemetry* telemetry = nullptr);

  ~KsirEngine();

  /// Validating factory for long-running callers that must not abort.
  static StatusOr<std::unique_ptr<KsirEngine>> Create(
      EngineConfig config, const TopicModel* model,
      WorkerPool* maintenance_pool = nullptr, Telemetry* telemetry = nullptr);

  /// Advances the clock to `bucket_end` and ingests `bucket` (elements with
  /// ts in (previous time, bucket_end], sorted by ts). Thread-exclusive.
  /// Rejects out-of-order bucket ends (InvalidArgument) and no-op calls that
  /// would neither move the clock nor ingest anything (FailedPrecondition).
  Status AdvanceTo(Timestamp bucket_end, std::vector<SocialElement> bucket);

  /// Convenience: splits `elements` (sorted by ts) into buckets of
  /// `config.bucket_length` and ingests them all, ending at the bucket
  /// boundary that covers the last element.
  Status Append(std::vector<SocialElement> elements);

  /// Answers one k-SIR query at the current time. Thread-safe with other
  /// queries; blocks AdvanceTo.
  StatusOr<QueryResult> Query(const KsirQuery& query) const;

  /// Current engine clock.
  Timestamp now() const;

  /// Monotone counter of successful AdvanceTo calls. Two equal epochs
  /// bracket a quiescent window: any query answered between them would see
  /// identical state, which is what makes epoch-keyed result caching sound.
  std::uint64_t bucket_epoch() const;

  /// Touched-topic summary of the most recent successful AdvanceTo, with
  /// `epoch` stamped to the bucket epoch it produced (see
  /// advance_summary.h). Empty with epoch 0 before the first bucket.
  /// Returns a copy under the query (shared) lock, so it is safe to call
  /// while another thread ingests.
  AdvanceSummary last_advance_summary() const;

  /// Current active-set size under the query (shared) lock — the accessor
  /// concurrent readers must use while another thread ingests (window() is
  /// unsynchronized by design).
  std::size_t num_active() const;

  /// The telemetry this engine records into (the shared one when passed,
  /// else the engine-owned one).
  Telemetry& telemetry() const { return *telemetry_; }

  /// Const-safe bulk export under the query (shared) lock: snapshots of the
  /// requested elements with their in-window referrer sets. Ids that are not
  /// active at call time are silently skipped, so callers racing AdvanceTo
  /// should verify bucket_epoch() did not move across the Query + Export
  /// pair and retry when it did.
  std::vector<ElementSnapshot> ExportSnapshots(
      const std::vector<ElementId>& ids) const;

  /// Read access for tests / benches (not thread-safe against AdvanceTo).
  const ActiveWindow& window() const { return window_; }
  const RankedListIndex& index() const { return index_; }
  const ScoringContext& scoring() const { return scoring_; }
  const EngineConfig& config() const { return config_; }
  MaintenanceStats maintenance_stats() const;

 private:
  EngineConfig config_;
  ActiveWindow window_;
  RankedListIndex index_;
  ScoringContext scoring_;
  /// Engine-owned telemetry (only when no shared one was passed); declared
  /// before the pool and the maintainer, which hold the raw pointer.
  std::unique_ptr<Telemetry> owned_telemetry_;
  Telemetry* telemetry_;
  Histogram* advance_hist_;
  /// Engine-owned maintenance pool (only when parallel maintenance is on
  /// and no shared pool was passed); declared before the maintainer, which
  /// holds the raw pointer.
  std::unique_ptr<WorkerPool> owned_pool_;
  IndexMaintainer maintainer_;
  MaintenanceStats stats_;
  std::uint64_t bucket_epoch_ = 0;
  /// Copy of the maintainer's last bucket summary, epoch-stamped (the
  /// maintainer's own is only valid until its next Apply).
  AdvanceSummary last_summary_;
  mutable std::shared_mutex mutex_;
};

}  // namespace ksir

#endif  // KSIR_CORE_ENGINE_H_
