#include "service/worker_pool.h"

#include <algorithm>
#include <utility>

namespace ksir {

WorkerPool::WorkerPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this]() { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::unique_lock lock(mutex_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void WorkerPool::Submit(std::function<void()> task) {
  {
    std::unique_lock lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void WorkerPool::WaitIdle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this]() { return queue_.empty() && in_flight_ == 0; });
}

void TaskGroup::Submit(std::function<void()> task) {
  {
    std::unique_lock lock(mutex_);
    ++pending_;
  }
  pool_->Submit([this, task = std::move(task)]() {
    task();
    std::unique_lock lock(mutex_);
    if (--pending_ == 0) done_.notify_all();
  });
}

void TaskGroup::Wait() {
  std::unique_lock lock(mutex_);
  done_.wait(lock, [this]() { return pending_ == 0; });
}

void WorkerPool::WorkerLoop() {
  std::unique_lock lock(mutex_);
  for (;;) {
    work_available_.wait(lock,
                         [this]() { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (shutdown_) return;
      continue;
    }
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++in_flight_;
    lock.unlock();
    task();
    lock.lock();
    --in_flight_;
    if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
  }
}

}  // namespace ksir
