#include "text/tokenizer.h"

#include <cctype>

namespace ksir {

namespace {

bool IsTokenChar(unsigned char c) {
  // Word characters: letters, digits, and intra-word connectors that occur
  // in social handles ("kian_lee", "semi-final"). '#'/'@' handled separately.
  return std::isalnum(c) != 0 || c == '_' || c == '-' || c == '\'';
}

bool IsAllDigits(std::string_view token) {
  if (token.empty()) return false;
  for (unsigned char c : token) {
    if (std::isdigit(c) == 0 && c != '-' && c != '\'') return false;
  }
  return true;
}

bool StartsWithUrlScheme(std::string_view token) {
  return token.starts_with("http://") || token.starts_with("https://") ||
         token.starts_with("www.");
}

}  // namespace

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  const std::size_t n = text.size();
  while (i < n) {
    const auto c = static_cast<unsigned char>(text[i]);
    if (!IsTokenChar(c) && c != '#' && c != '@') {
      ++i;
      continue;
    }
    char sigil = '\0';
    if (c == '#' || c == '@') {
      sigil = static_cast<char>(c);
      ++i;
      if (i >= n || !IsTokenChar(static_cast<unsigned char>(text[i]))) {
        continue;  // lone '#'/'@' acts as a separator
      }
    }
    std::size_t start = i;
    while (i < n && IsTokenChar(static_cast<unsigned char>(text[i]))) ++i;
    std::string token(text.substr(start, i - start));

    if (options_.lowercase) {
      for (auto& ch : token) {
        ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
      }
    }
    // URL detection must look at the raw run: a scheme token is followed by
    // ':' and a bare host by '.', so peek ahead and swallow the whole URL.
    const bool url_head =
        sigil == '\0' && i < n &&
        (((token == "http" || token == "https") && text[i] == ':') ||
         (token == "www" && text[i] == '.'));
    if (options_.strip_urls && url_head) {
      while (i < n && std::isspace(static_cast<unsigned char>(text[i])) == 0) {
        ++i;
      }
      continue;
    }
    if (options_.strip_urls && StartsWithUrlScheme(token)) continue;
    if (options_.drop_numbers && IsAllDigits(token)) continue;
    // Trim leading/trailing connectors left over from punctuation runs.
    while (!token.empty() && (token.front() == '-' || token.front() == '\'')) {
      token.erase(token.begin());
    }
    while (!token.empty() && (token.back() == '-' || token.back() == '\'')) {
      token.pop_back();
    }
    if (token.size() < options_.min_token_length) continue;
    if (sigil != '\0' && options_.keep_sigils) {
      token.insert(token.begin(), sigil);
    }
    tokens.push_back(std::move(token));
  }
  return tokens;
}

}  // namespace ksir
