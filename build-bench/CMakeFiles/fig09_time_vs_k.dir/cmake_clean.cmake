file(REMOVE_RECURSE
  "CMakeFiles/fig09_time_vs_k.dir/bench/fig09_time_vs_k.cpp.o"
  "CMakeFiles/fig09_time_vs_k.dir/bench/fig09_time_vs_k.cpp.o.d"
  "fig09_time_vs_k"
  "fig09_time_vs_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_time_vs_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
