# Empty compiler generated dependencies file for table06_quantitative.
# This may be replaced when dependencies are built.
