#include "core/traversal.h"

#include "common/check.h"

namespace ksir {

RankedListCursor::RankedListCursor(const RankedListIndex* index,
                                   const SparseVector* query) {
  KSIR_CHECK(index != nullptr);
  KSIR_CHECK(query != nullptr);
  lists_.reserve(query->nnz());
  for (const auto& [topic, weight] : query->entries()) {
    if (weight <= 0.0) continue;
    if (static_cast<std::size_t>(topic) >= index->num_topics()) continue;
    const RankedList& list = index->list(topic);
    lists_.push_back(ListPos{topic, weight, list.begin(), list.end()});
  }
}

void RankedListCursor::SkipVisited(ListPos* pos) const {
  while (pos->it != pos->end && visited_.contains(pos->it->id)) {
    ++pos->it;
  }
}

double RankedListCursor::UpperBound() const {
  double ub = 0.0;
  for (const ListPos& pos : lists_) {
    if (pos.it == pos.end) continue;
    ub += pos.weight * pos.it->score;
  }
  return ub;
}

bool RankedListCursor::Exhausted() const {
  for (const ListPos& pos : lists_) {
    if (pos.it != pos.end) return false;
  }
  return true;
}

std::optional<ElementId> RankedListCursor::PopNext() {
  ListPos* best = nullptr;
  double best_value = -1.0;
  for (ListPos& pos : lists_) {
    if (pos.it == pos.end) continue;
    const double value = pos.weight * pos.it->score;
    if (value > best_value) {
      best_value = value;
      best = &pos;
    }
  }
  if (best == nullptr) return std::nullopt;
  const ElementId id = best->it->id;
  visited_.insert(id);
  ++num_retrieved_;
  // Keep the invariant: every head position points at an unvisited tuple,
  // so UpperBound() matches the paper's UB over unevaluated elements.
  for (ListPos& pos : lists_) SkipVisited(&pos);
  return id;
}

}  // namespace ksir
