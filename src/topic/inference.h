// Topic-distribution inference for unseen documents against a fixed trained
// model ("the query and topic inferences become rather standard (e.g., Gibbs
// sampling)" — paper Section 4). Two rules are provided:
//  * kGibbs  — LDA-style collapsed Gibbs with the topic-word matrix frozen;
//  * kBiterm — BTM rule p(z|d) ∝ sum over biterms of p(z) p(w1|z) p(w2|z).
#ifndef KSIR_TOPIC_INFERENCE_H_
#define KSIR_TOPIC_INFERENCE_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/sparse_vector.h"
#include "text/document.h"
#include "topic/topic_model.h"

namespace ksir {

/// Inference rule selector.
enum class InferenceMethod {
  kGibbs,
  kBiterm,
};

/// Inference configuration.
struct InferenceOptions {
  InferenceMethod method = InferenceMethod::kGibbs;
  /// Gibbs sweeps over the document (kGibbs only).
  std::int32_t iterations = 30;
  std::int32_t burn_in = 10;
  /// Document-topic smoothing for inference. Deliberately much smaller than
  /// the training prior 50/z: social texts are short, and a strong prior
  /// would drown the evidence of a 5-token tweet (theta would collapse
  /// toward uniform). <= 0 means "use 0.1".
  double alpha = -1.0;
  /// Biterm co-occurrence window (kBiterm only).
  std::int32_t biterm_window = 15;
  /// Entries below this probability are dropped from the sparse vector and
  /// the remainder renormalized (DESIGN.md §5; keeps topic vectors sparse).
  double sparsity_threshold = 0.05;
  std::uint64_t seed = 11;
};

/// Stateless-per-call inferencer over a fixed TopicModel. Thread-safe for
/// concurrent InferDense/InferSparse calls (each call forks its own RNG from
/// the per-call seed parameter).
class TopicInferencer {
 public:
  /// `model` must outlive the inferencer.
  TopicInferencer(const TopicModel* model, InferenceOptions options = {});

  /// Dense topic distribution of `doc` (sums to 1). Empty or fully
  /// out-of-vocabulary documents get the model's topic prior.
  /// `salt` decorrelates the RNG across calls while staying deterministic.
  std::vector<double> InferDense(const Document& doc,
                                 std::uint64_t salt = 0) const;

  /// Sparse, thresholded and renormalized topic vector (p_i(e) of the paper).
  SparseVector InferSparse(const Document& doc, std::uint64_t salt = 0) const;

  const TopicModel& model() const { return *model_; }
  const InferenceOptions& options() const { return options_; }

 private:
  std::vector<double> InferGibbs(const Document& doc, Rng* rng) const;
  std::vector<double> InferBiterm(const Document& doc) const;

  const TopicModel* model_;
  InferenceOptions options_;
};

}  // namespace ksir

#endif  // KSIR_TOPIC_INFERENCE_H_
